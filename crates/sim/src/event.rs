//! The deterministic event queue.
//!
//! [`EventQueue`] is a calendar/bucket scheduler built for simulations
//! with hundreds of thousands of live events.  It replaces the seed's
//! monolithic `BinaryHeap<Event<M>>` (kept below as [`BaselineHeap`]
//! for differential tests and benchmarks) while popping in *exactly*
//! the same `(time, seq)` order, so small runs stay byte-identical.
//!
//! Layout:
//!
//! * **Slab** — event payloads live in a free-listed slab; the queue's
//!   internal structures move only 24-byte keys, never the payload.
//! * **Current window** — the events of the window being drained, as a
//!   vector sorted once per window and consumed by index: amortised
//!   O(1) pop.  Pushes landing inside the already-sorted window (e.g.
//!   zero-latency self-sends) go to a tiny overlay heap that is merged
//!   at pop by a single comparison.
//! * **Near wheel** — `NB` buckets of `2^W_SHIFT` µs each (~262 ms of
//!   horizon): O(1) push for the send/deliver hot path.
//! * **Far heap** — long-range timers beyond the wheel horizon fall
//!   back to a binary heap of keys and migrate into the current window
//!   lazily as time advances.
//!
//! Timer cancellation is lazy: [`EventQueue::cancel_timer`] tombstones
//! the slab slot and the key is discarded when it surfaces, so there is
//! no scan-and-remove anywhere.

use crate::process::NodeId;
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Bucket width exponent: each wheel bucket spans `2^W_SHIFT` µs.
const W_SHIFT: u32 = 10;
/// Number of wheel buckets (power of two; the wheel spans `NB << W_SHIFT` µs).
const NB: usize = 256;
const NIL: u32 = u32::MAX;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind<M> {
    /// Deliver a message to `to` from `from`.
    ///
    /// The payload is behind an `Arc`: a multicast to N peers enqueues
    /// N pointers to one allocation instead of N deep clones.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Source node.
        from: NodeId,
        /// The payload (shared across fan-out deliveries).
        msg: Arc<M>,
    },
    /// Fire a timer on `node` with the caller-chosen `tag`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen discriminator.
        tag: u64,
        /// Unique timer id (for cancellation).
        id: u64,
    },
    /// Crash a node (fault injection).
    Crash(NodeId),
    /// Recover a crashed node.
    Recover(NodeId),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence (insertion order).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind<M>,
}

/// Sort key: `(at, seq)` ascending; `idx` is the slab slot and never
/// influences order (`seq` is unique).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    at: u64,
    seq: u64,
    idx: u32,
}

#[derive(Debug)]
enum Slot<M> {
    Occupied(EventKind<M>),
    /// Lazily-cancelled timer: the key is still queued somewhere and
    /// the slot must not be reused until the key surfaces.
    Cancelled,
    Free(u32),
}

/// Queue shape telemetry (see [`EventQueue::depth_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueDepthStats {
    /// Live (non-cancelled) events currently queued.
    pub live: usize,
    /// High-water mark of live events over the queue's lifetime.
    pub peak: usize,
    /// Slab slots allocated (capacity actually touched, a resident-set
    /// proxy for the queue itself).
    pub slots: usize,
    /// Cancelled timers discarded lazily so far.
    pub drained_cancelled: u64,
}

/// Earliest-first event queue with deterministic tie-breaking.
///
/// Pops in strictly ascending `(at, seq)` order — identical, event for
/// event, to the seed [`BaselineHeap`] scheduler.
#[derive(Debug)]
pub struct EventQueue<M> {
    slots: Vec<Slot<M>>,
    free_head: u32,
    /// The sorted current window, drained by `cur_pos`.
    cur: Vec<Key>,
    cur_pos: usize,
    /// Pushes that landed at or before the current window's end after
    /// it was sorted (same-instant cascades, requeues into the past).
    overlay: BinaryHeap<Reverse<Key>>,
    /// Exclusive µs bound of the current window (multiple of the bucket
    /// width); everything earlier is in `cur`/`overlay` or popped.
    cur_end: u64,
    wheel: Vec<Vec<Key>>,
    wheel_len: usize,
    far: BinaryHeap<Reverse<Key>>,
    /// Pending timer id -> slab slot, for O(1) lazy cancellation.
    timers: HashMap<u64, u32>,
    next_seq: u64,
    live: usize,
    peak_live: usize,
    drained_cancelled: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            cur: Vec::new(),
            cur_pos: 0,
            overlay: BinaryHeap::new(),
            cur_end: 0,
            wheel: (0..NB).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            far: BinaryHeap::new(),
            timers: HashMap::new(),
            next_seq: 0,
            live: 0,
            peak_live: 0,
            drained_cancelled: 0,
        }
    }

    fn alloc(&mut self, kind: EventKind<M>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            match std::mem::replace(&mut self.slots[idx as usize], Slot::Occupied(kind)) {
                Slot::Free(next) => self.free_head = next,
                _ => unreachable!("free list points at a live slot"),
            }
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot::Occupied(kind));
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.slots[idx as usize] = Slot::Free(self.free_head);
        self.free_head = idx;
    }

    fn take(&mut self, idx: u32) -> EventKind<M> {
        let slot = std::mem::replace(&mut self.slots[idx as usize], Slot::Free(self.free_head));
        self.free_head = idx;
        match slot {
            Slot::Occupied(kind) => kind,
            _ => unreachable!("queued key points at an empty slot"),
        }
    }

    fn is_cancelled(&self, idx: u32) -> bool {
        matches!(self.slots[idx as usize], Slot::Cancelled)
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let timer_id = match &kind {
            EventKind::Timer { id, .. } => Some(*id),
            _ => None,
        };
        let idx = self.alloc(kind);
        if let Some(id) = timer_id {
            self.timers.insert(id, idx);
        }
        let key = Key { at: at.0, seq, idx };
        if key.at < self.cur_end {
            self.overlay.push(Reverse(key));
        } else if (key.at >> W_SHIFT) < (self.cur_end >> W_SHIFT) + NB as u64 {
            self.wheel[(key.at >> W_SHIFT) as usize & (NB - 1)].push(key);
            self.wheel_len += 1;
        } else {
            self.far.push(Reverse(key));
        }
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
    }

    /// Cancels a pending timer by id; the queued entry is tombstoned
    /// and discarded lazily when it surfaces.  Returns whether a
    /// pending timer existed (already-fired ids are a no-op).
    pub fn cancel_timer(&mut self, id: u64) -> bool {
        if let Some(idx) = self.timers.remove(&id) {
            self.slots[idx as usize] = Slot::Cancelled;
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Drops tombstones off both fronts and advances the window until a
    /// live event is at the front; false when the queue is drained.
    fn refill(&mut self) -> bool {
        loop {
            while self.cur_pos < self.cur.len() {
                let idx = self.cur[self.cur_pos].idx;
                if self.is_cancelled(idx) {
                    self.release(idx);
                    self.cur_pos += 1;
                    self.drained_cancelled += 1;
                } else {
                    break;
                }
            }
            while let Some(Reverse(k)) = self.overlay.peek() {
                if self.is_cancelled(k.idx) {
                    let idx = k.idx;
                    self.overlay.pop();
                    self.release(idx);
                    self.drained_cancelled += 1;
                } else {
                    break;
                }
            }
            if self.cur_pos < self.cur.len() || !self.overlay.is_empty() {
                return true;
            }
            if self.wheel_len == 0 && self.far.is_empty() {
                return false;
            }
            // Advance to the next non-empty window.  Every wheel entry
            // lies in `[cur_end, cur_end + NB·W)`, which spans exactly
            // one window per bucket, so the scan from the current
            // window's bucket finds the earliest one.
            self.cur.clear();
            self.cur_pos = 0;
            let new_end = if self.wheel_len > 0 {
                let base = self.cur_end >> W_SHIFT;
                let (b, s) = (0..NB as u64)
                    .map(|s| (((base + s) as usize) & (NB - 1), s))
                    .find(|&(b, _)| !self.wheel[b].is_empty())
                    .expect("wheel_len > 0");
                std::mem::swap(&mut self.cur, &mut self.wheel[b]);
                self.wheel_len -= self.cur.len();
                (base + s + 1) << W_SHIFT
            } else {
                // Wheel empty: jump straight to the earliest far event.
                let Reverse(top) = *self.far.peek().expect("far non-empty");
                ((top.at >> W_SHIFT) + 1) << W_SHIFT
            };
            // Far events may predate the chosen window's end (the
            // horizon was shorter when they were pushed): merge them.
            while let Some(Reverse(k)) = self.far.peek() {
                if k.at < new_end {
                    self.cur.push(*k);
                    self.far.pop();
                } else {
                    break;
                }
            }
            self.cur_end = new_end;
            self.cur.sort_unstable();
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        if !self.refill() {
            return None;
        }
        let front = (self.cur_pos < self.cur.len()).then(|| self.cur[self.cur_pos]);
        let key = match (front, self.overlay.peek().map(|r| r.0)) {
            (Some(c), Some(o)) if o < c => {
                self.overlay.pop();
                o
            }
            (Some(c), _) => {
                self.cur_pos += 1;
                c
            }
            (None, Some(o)) => {
                self.overlay.pop();
                o
            }
            (None, None) => unreachable!("refill returned true"),
        };
        let kind = self.take(key.idx);
        if let EventKind::Timer { id, .. } = &kind {
            self.timers.remove(id);
        }
        self.live -= 1;
        Some(Event {
            at: SimTime(key.at),
            seq: key.seq,
            kind,
        })
    }

    /// Time of the earliest live event without removing it (advances
    /// the internal window cursor, hence `&mut`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.refill() {
            return None;
        }
        let front = (self.cur_pos < self.cur.len()).then(|| self.cur[self.cur_pos].at);
        let over = self.overlay.peek().map(|r| r.0.at);
        Some(SimTime(match (front, over) {
            (Some(c), Some(o)) => c.min(o),
            (Some(c), None) => c,
            (None, Some(o)) => o,
            (None, None) => unreachable!("refill returned true"),
        }))
    }

    /// Number of pending live events (cancelled timers excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Queue shape telemetry for memory accounting.
    pub fn depth_stats(&self) -> QueueDepthStats {
        QueueDepthStats {
            live: self.live,
            peak: self.peak_live,
            slots: self.slots.len(),
            drained_cancelled: self.drained_cancelled,
        }
    }
}

// ---------------------------------------------------------------------------
// The seed scheduler, kept verbatim in shape: one monolithic max-heap
// over full inline entries.  Differential tests assert the bucket queue
// pops in exactly this order; the `sim_100k` bench measures the gap.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct BaselineEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for BaselineEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for BaselineEntry<T> {}
impl<T> PartialOrd for BaselineEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for BaselineEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The seed event scheduler: a single `BinaryHeap` whose entries carry
/// the payload inline (every sift moves it).  Retained as the ordering
/// oracle for [`EventQueue`] and as the benchmark baseline.
#[derive(Debug, Default)]
pub struct BaselineHeap<T> {
    heap: BinaryHeap<BaselineEntry<T>>,
    next_seq: u64,
}

impl<T> BaselineHeap<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BaselineHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(BaselineEntry { at, seq, item });
    }

    /// Removes and returns the earliest `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.item))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: u32) -> EventKind<u64> {
        EventKind::Deliver {
            to: NodeId(to),
            from: NodeId(0),
            msg: Arc::new(0),
        }
    }

    fn timer(id: u64) -> EventKind<u64> {
        EventKind::Timer {
            node: NodeId(0),
            tag: 0,
            id,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), deliver(3));
        q.push(SimTime(10), deliver(1));
        q.push(SimTime(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(SimTime(42), deliver(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_interleave_with_near() {
        let mut q = EventQueue::new();
        // Far beyond the wheel horizon (~262 ms).
        q.push(SimTime(10_000_000), deliver(9));
        q.push(SimTime(5), deliver(1));
        q.push(SimTime(400_000), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![5, 400_000, 10_000_000]);
    }

    #[test]
    fn push_into_current_window_after_sorting() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), deliver(1));
        q.push(SimTime(200), deliver(2));
        assert_eq!(q.pop().unwrap().at, SimTime(100));
        // The window [0, 1024) is now sorted and half-drained; a push
        // into it must still come out in time order.
        q.push(SimTime(150), deliver(3));
        q.push(SimTime(50), deliver(4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![50, 150, 200]);
    }

    #[test]
    fn cancelled_timer_never_surfaces() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), timer(7));
        q.push(SimTime(20), deliver(1));
        assert!(q.cancel_timer(7));
        assert!(!q.cancel_timer(7), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime(20));
        assert!(q.pop().is_none());
        assert_eq!(q.depth_stats().drained_cancelled, 1);
    }

    #[test]
    fn peek_skips_cancelled_front() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), timer(1));
        q.push(SimTime(5_000_000), deliver(2));
        q.cancel_timer(1);
        // peek must report the live event, not the tombstone.
        assert_eq!(q.peek_time(), Some(SimTime(5_000_000)));
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..100u32 {
                q.push(SimTime(round * 1000 + u64::from(i)), deliver(i));
            }
            while q.pop().is_some() {}
        }
        // Slab never grows beyond one round's worth of slots.
        assert!(q.depth_stats().slots <= 100, "slots {}", q.depth_stats().slots);
        assert_eq!(q.depth_stats().peak, 100);
    }

    #[test]
    fn sparse_far_only_queues_jump() {
        let mut q = EventQueue::new();
        for i in 0..4u64 {
            q.push(SimTime(i * 60_000_000), timer(i)); // one per virtual minute
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![0, 60_000_000, 120_000_000, 180_000_000]);
    }

    #[test]
    fn matches_baseline_on_mixed_workload() {
        // A deterministic pseudo-random push/pop interleaving must pop
        // in exactly the baseline's (time, seq) order.
        let mut q = EventQueue::new();
        let mut b = BaselineHeap::new();
        let mut x = 0x1234_5678_u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        let mut expect = Vec::new();
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let action = (x >> 33) % 3;
            if action < 2 {
                let delay = (x >> 17) % 2_000_000; // 0..2 s, spans all tiers
                q.push(SimTime(now + delay), deliver(1));
                b.push(SimTime(now + delay), ());
            } else {
                if let Some(e) = q.pop() {
                    now = e.at.0;
                    popped.push((e.at.0, e.seq));
                }
                if let Some((at, seq, ())) = b.pop() {
                    expect.push((at.0, seq));
                }
            }
        }
        while let Some(e) = q.pop() {
            popped.push((e.at.0, e.seq));
        }
        while let Some((at, seq, ())) = b.pop() {
            expect.push((at.0, seq));
        }
        assert_eq!(popped, expect);
    }
}
