//! Deterministic discrete-event simulation substrate.
//!
//! The paper's system runs over a WAN with untrusted CDN hosts; this crate
//! is the testbed substitute.  It provides:
//!
//! * **Virtual time** ([`time`]) — integer microseconds, no wall-clock
//!   dependence, fully reproducible runs from a single `u64` seed.
//! * **Processes** ([`process`]) — actor-style nodes with message and timer
//!   callbacks.
//! * **A world** ([`world`]) — the event loop wiring processes together
//!   through a configurable network.
//! * **Network models** ([`net`]) — constant/uniform/exponential/lognormal
//!   latency, message loss, and partitions ("islands").
//! * **CPU accounting** ([`world`], [`cost`]) — handlers charge virtual
//!   work; a busy node queues subsequent events, so server load and auditor
//!   lag emerge naturally (needed by experiments E5 and E7).
//! * **Fault injection** ([`world`]) — scheduled crashes and recoveries
//!   (experiment E12).
//! * **Metrics** ([`metrics`]) — counters, histograms with percentiles, and
//!   time series that the benchmark harness turns into tables.
//!
//! Determinism contract: given the same seed, node construction order, and
//! schedule of API calls, every run produces the identical event sequence.
//! Event ties break on (time, insertion sequence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod event;
pub mod metrics;
pub mod net;
pub mod process;
pub mod ring;
pub mod time;
pub mod world;

pub use cost::CostModel;
pub use event::{BaselineHeap, EventQueue, QueueDepthStats};
pub use metrics::{Histogram, Metrics, Summary};
pub use net::{LatencyModel, LinkModel, NetworkConfig};
pub use process::{NodeId, Payload, Process};
pub use ring::RingLog;
pub use time::{SimDuration, SimTime};
pub use world::{Ctx, World};
