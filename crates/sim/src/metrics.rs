//! Metrics: counters, histograms with percentiles, gauges, time series.
//!
//! Everything an experiment reports flows through a [`Metrics`] registry
//! owned by the world; the benchmark harness reads it after `run_until`.

use crate::time::SimTime;
use serde::{FromJson, ToJson};
use std::collections::BTreeMap;

/// A recording of `u64` observations with on-demand percentile queries.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    values: Vec<u64>,
    sorted: bool,
}

/// Summary statistics extracted from a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, ToJson, FromJson)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: u64,
    /// Median (p50).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum value.
    pub max: u64,
}

impl Summary {
    /// A summary of an empty histogram (all zeros).
    pub const EMPTY: Summary = Summary {
        count: 0,
        mean: 0.0,
        min: 0,
        p50: 0,
        p90: 0,
        p99: 0,
        max: 0,
    };
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank; 0 when empty.
    pub fn quantile(&mut self, q: f64) -> u64 {
        if self.values.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let rank = ((self.values.len() as f64) * q).ceil() as usize;
        let idx = rank.clamp(1, self.values.len()) - 1;
        self.values[idx]
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|&v| v as f64).sum::<f64>() / self.values.len() as f64
    }

    /// Full summary statistics.
    pub fn summary(&mut self) -> Summary {
        if self.values.is_empty() {
            return Summary::EMPTY;
        }
        self.ensure_sorted();
        Summary {
            count: self.values.len(),
            mean: self.mean(),
            min: self.values[0],
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: *self.values.last().expect("non-empty"),
        }
    }

    /// Raw observations (unsorted order not guaranteed).
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Registry of named metrics for one simulation run.
///
/// `BTreeMap` keys keep report output deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records an observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Summary of the named histogram ([`Summary::EMPTY`] when absent).
    pub fn summary(&mut self, name: &str) -> Summary {
        self.histograms
            .get_mut(name)
            .map(Histogram::summary)
            .unwrap_or(Summary::EMPTY)
    }

    /// Mutable access to a histogram (created on demand).
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Appends a `(time, value)` point to the named time series.
    pub fn series_push(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// Reads a time series (empty when absent).
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All counter names, sorted (deterministic reporting order).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merges another registry into this one (counters add, histograms
    /// concatenate, gauges overwrite, series concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            for &v in h.values() {
                mine.observe(v);
            }
        }
        for (k, s) in &other.series {
            self.series.entry(k.clone()).or_default().extend(s.iter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        m.inc("reads");
        m.add("reads", 4);
        assert_eq!(m.counter("reads"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.50), 50);
        assert_eq!(h.quantile(0.90), 90);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.summary(), Summary::EMPTY);
    }

    #[test]
    fn summary_fields() {
        let mut m = Metrics::new();
        for v in [10u64, 20, 30] {
            m.observe("lat", v);
        }
        let s = m.summary("lat");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.p50, 20);
        assert!((s.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn observe_after_summary_stays_correct() {
        let mut h = Histogram::new();
        h.observe(5);
        let _ = h.summary();
        h.observe(1);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn series_ordering() {
        let mut m = Metrics::new();
        m.series_push("lag", SimTime(1), 0.5);
        m.series_push("lag", SimTime(2), 0.7);
        assert_eq!(m.series("lag").len(), 2);
        assert_eq!(m.series("lag")[1], (SimTime(2), 0.7));
        assert!(m.series("missing").is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add("x", 1);
        b.add("x", 2);
        b.observe("h", 9);
        b.set_gauge("g", 3.5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.summary("h").count, 1);
        assert_eq!(a.gauge("g"), 3.5);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("load", 0.3);
        m.set_gauge("load", 0.9);
        assert_eq!(m.gauge("load"), 0.9);
    }
}
