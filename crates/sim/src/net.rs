//! Network models: latency distributions, loss, and link overrides.

use crate::process::NodeId;
use crate::time::SimDuration;
use rand::Rng;
use std::collections::HashMap;

/// A latency distribution for one-way message delivery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform(SimDuration, SimDuration),
    /// Exponential with the given mean (heavy tail of WAN queueing).
    Exponential(SimDuration),
    /// Log-normal parameterised by median and sigma (typical WAN RTT shape).
    LogNormal {
        /// Median one-way latency.
        median: SimDuration,
        /// Log-space standard deviation (0.3–0.6 is WAN-like).
        sigma: f64,
    },
}

impl LatencyModel {
    /// Samples a latency.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(min, max) => {
                let (lo, hi) = (min.as_micros(), max.as_micros().max(min.as_micros()));
                SimDuration(rng.gen_range(lo..=hi))
            }
            LatencyModel::Exponential(mean) => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimDuration((-(u.ln()) * mean.as_micros() as f64) as u64)
            }
            LatencyModel::LogNormal { median, sigma } => {
                // Box-Muller for a standard normal sample.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let mu = (median.as_micros() as f64).ln();
                SimDuration((mu + sigma * z).exp() as u64)
            }
        }
    }

    /// The distribution mean, in microseconds (for reporting).
    pub fn mean_micros(&self) -> f64 {
        match *self {
            LatencyModel::Constant(d) => d.as_micros() as f64,
            LatencyModel::Uniform(min, max) => (min.as_micros() + max.as_micros()) as f64 / 2.0,
            LatencyModel::Exponential(mean) => mean.as_micros() as f64,
            LatencyModel::LogNormal { median, sigma } => {
                (median.as_micros() as f64) * (sigma * sigma / 2.0).exp()
            }
        }
    }
}

/// Behaviour of a (directed) link.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Propagation latency distribution.
    pub latency: LatencyModel,
    /// Probability a message is silently dropped.
    pub loss: f64,
    /// Additional delay per payload byte (bandwidth model); zero disables.
    pub per_byte: SimDuration,
}

impl LinkModel {
    /// A lossless constant-latency link.
    pub fn constant(latency: SimDuration) -> Self {
        LinkModel {
            latency: LatencyModel::Constant(latency),
            loss: 0.0,
            per_byte: SimDuration::ZERO,
        }
    }

    /// A WAN-flavoured link: log-normal latency around `median`.
    pub fn wan(median: SimDuration) -> Self {
        LinkModel {
            latency: LatencyModel::LogNormal { median, sigma: 0.4 },
            loss: 0.0,
            per_byte: SimDuration::ZERO,
        }
    }

    /// Returns this link with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Returns this link with a per-byte transmission delay.
    pub fn with_per_byte(mut self, per_byte: SimDuration) -> Self {
        self.per_byte = per_byte;
        self
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::constant(SimDuration::from_millis(10))
    }
}

/// Full network configuration: a default link plus per-pair overrides.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Link used when no override matches.
    pub default_link: LinkModel,
    /// Directed overrides keyed by `(from, to)`.
    pub overrides: HashMap<(NodeId, NodeId), LinkModel>,
    /// Per-node overrides applying to all traffic touching that node
    /// (checked after pair overrides; `from` first, then `to`).
    pub node_overrides: HashMap<NodeId, LinkModel>,
}

impl NetworkConfig {
    /// Creates a config with the given default link.
    pub fn new(default_link: LinkModel) -> Self {
        NetworkConfig {
            default_link,
            overrides: HashMap::new(),
            node_overrides: HashMap::new(),
        }
    }

    /// Sets a directed per-pair override.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkModel) {
        self.overrides.insert((from, to), link);
    }

    /// Sets an override for every link touching `node`.
    pub fn set_node_link(&mut self, node: NodeId, link: LinkModel) {
        self.node_overrides.insert(node, link);
    }

    /// Resolves the link model for a `(from, to)` pair.
    pub fn link(&self, from: NodeId, to: NodeId) -> &LinkModel {
        self.overrides
            .get(&(from, to))
            .or_else(|| self.node_overrides.get(&from))
            .or_else(|| self.node_overrides.get(&to))
            .unwrap_or(&self.default_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform(SimDuration(100), SimDuration(200));
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r).as_micros();
            assert!((100..=200).contains(&s));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let m = LatencyModel::Exponential(SimDuration(1_000));
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).as_micros()).sum();
        let mean = total as f64 / n as f64;
        assert!((800.0..1200.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lognormal_median_close() {
        let m = LatencyModel::LogNormal {
            median: SimDuration(10_000),
            sigma: 0.4,
        };
        let mut r = rng();
        let mut samples: Vec<u64> = (0..10_001).map(|_| m.sample(&mut r).as_micros()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!((8500.0..11500.0).contains(&median), "median {median}");
    }

    #[test]
    fn link_resolution_precedence() {
        let mut cfg = NetworkConfig::new(LinkModel::constant(SimDuration(1)));
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        cfg.set_node_link(b, LinkModel::constant(SimDuration(2)));
        cfg.set_link(a, b, LinkModel::constant(SimDuration(3)));

        // Pair override wins.
        assert_eq!(
            cfg.link(a, b).latency,
            LatencyModel::Constant(SimDuration(3))
        );
        // Node override next.
        assert_eq!(
            cfg.link(b, c).latency,
            LatencyModel::Constant(SimDuration(2))
        );
        assert_eq!(
            cfg.link(c, b).latency,
            LatencyModel::Constant(SimDuration(2))
        );
        // Default otherwise.
        assert_eq!(
            cfg.link(a, c).latency,
            LatencyModel::Constant(SimDuration(1))
        );
    }

    #[test]
    fn loss_is_clamped() {
        let l = LinkModel::constant(SimDuration(1)).with_loss(1.7);
        assert_eq!(l.loss, 1.0);
        let l = LinkModel::constant(SimDuration(1)).with_loss(-0.2);
        assert_eq!(l.loss, 0.0);
    }

    #[test]
    fn mean_micros_reporting() {
        assert_eq!(LatencyModel::Constant(SimDuration(5)).mean_micros(), 5.0);
        assert_eq!(
            LatencyModel::Uniform(SimDuration(0), SimDuration(10)).mean_micros(),
            5.0
        );
    }
}
