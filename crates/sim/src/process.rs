//! The process (actor) abstraction hosted by a [`crate::World`].

use crate::world::Ctx;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Identifies a node inside a world (dense index, assigned at spawn).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Message payloads carried by the simulated network.
///
/// `wire_len` feeds the per-byte component of link latency; returning 0 (the
/// default) disables size-dependent delay for that message type.
///
/// `Clone` is required because queued payloads are shared behind `Arc`:
/// a multicast's fan-out deliveries all point at one allocation, and
/// every delivery but the last clones the payload out for the handler.
pub trait Payload: Clone + 'static {
    /// Approximate encoded size in bytes.
    fn wire_len(&self) -> usize {
        0
    }
}

impl Payload for String {}
impl Payload for Vec<u8> {
    fn wire_len(&self) -> usize {
        self.len()
    }
}
impl Payload for u64 {}

/// A simulated node: reacts to messages and timers.
///
/// Handlers receive a [`Ctx`] for sending messages, arming timers, charging
/// virtual CPU work, sampling randomness, and recording metrics.  All state
/// lives inside the implementing type; the world owns the boxed process.
pub trait Process<M: Payload>: Any {
    /// Invoked once when the node is added to the world.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Invoked when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// Invoked when a timer armed with `tag` fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: u64) {}

    /// Invoked when the world crashes this node (fault injection).
    fn on_crash(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Invoked when the world recovers this node.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Human-readable label for traces and panics.
    fn name(&self) -> String {
        "process".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn default_payload_sizes() {
        assert_eq!("hello".to_string().wire_len(), 0);
        assert_eq!(vec![0u8; 16].wire_len(), 16);
        assert_eq!(9u64.wire_len(), 0);
    }
}
