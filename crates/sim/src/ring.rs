//! A bounded append-only log for test harnesses and soak probes.
//!
//! Harness processes used to collect every received message or timer
//! tick into an unbounded `Vec`, which grows without limit in soak and
//! churn runs.  [`RingLog`] keeps only the newest `capacity` entries
//! while remembering how many were ever pushed, and indexes by
//! *logical* position so short-run assertions read exactly like they
//! did against a `Vec`.

use std::collections::VecDeque;

/// A capacity-bounded log that drops its oldest entries.
#[derive(Clone, Debug)]
pub struct RingLog<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingLog<T> {
    /// Creates a log retaining at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        RingLog {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Total number of entries ever pushed (retained or evicted).
    pub fn total(&self) -> u64 {
        self.dropped + self.buf.len() as u64
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was ever pushed *and retained*.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entry at logical position `i` (0 = first ever pushed), or `None`
    /// if it was evicted or never written.
    pub fn get(&self, i: u64) -> Option<&T> {
        i.checked_sub(self.dropped)
            .and_then(|off| self.buf.get(off as usize))
    }

    /// The most recent entry.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Iterates over the retained window, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_vec_below_capacity() {
        let mut log = RingLog::new(8);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.total(), 5);
        assert_eq!(log.get(0), Some(&0));
        assert_eq!(log.get(4), Some(&4));
        assert_eq!(log.last(), Some(&4));
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn evicts_oldest_and_keeps_logical_indexing() {
        let mut log = RingLog::new(3);
        for i in 0..10 {
            log.push(i);
        }
        assert_eq!(log.len(), 3, "bounded");
        assert_eq!(log.total(), 10);
        assert_eq!(log.get(0), None, "evicted");
        assert_eq!(log.get(7), Some(&7));
        assert_eq!(log.get(9), Some(&9));
        assert_eq!(log.get(10), None, "never written");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = RingLog::new(0);
        log.push(1u32);
        log.push(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.last(), Some(&2));
    }
}
