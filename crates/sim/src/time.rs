//! Virtual time: integer microseconds since simulation start.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time (microseconds since simulation start).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales by a float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

// JSON as raw microsecond counts (the canonical unit everywhere else).
impl serde::json::ToJson for SimTime {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::UInt(self.0)
    }
}

impl serde::json::FromJson for SimTime {
    fn from_json(v: &serde::json::Value) -> Result<Self, serde::json::JsonError> {
        v.as_u64()
            .map(SimTime)
            .ok_or_else(|| serde::json::JsonError::type_mismatch("microseconds", "SimTime"))
    }
}

impl serde::json::ToJson for SimDuration {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::UInt(self.0)
    }
}

impl serde::json::FromJson for SimDuration {
    fn from_json(v: &serde::json::Value) -> Result<Self, serde::json::JsonError> {
        v.as_u64()
            .map(SimDuration)
            .ok_or_else(|| serde::json::JsonError::type_mismatch("microseconds", "SimDuration"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(3), SimDuration::from_millis(12));
        assert_eq!(SimDuration::from_millis(4) * 3, SimDuration::from_millis(12));
        assert_eq!(SimDuration::from_millis(9) / 3, SimDuration::from_millis(3));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(100).mul_f64(1.5), SimDuration(150));
        assert_eq!(SimDuration(1).mul_f64(0.4), SimDuration(0));
        assert_eq!(SimDuration(1).mul_f64(-2.0), SimDuration(0));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration(5).to_string(), "5us");
        assert_eq!(SimDuration(5_000).to_string(), "5.000ms");
        assert_eq!(SimDuration(5_000_000).to_string(), "5.000s");
    }
}
