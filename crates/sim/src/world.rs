//! The simulation world: event loop, routing, CPU accounting, faults.

use crate::cost::CostModel;
use crate::event::{Event, EventKind, EventQueue, QueueDepthStats};
use crate::metrics::Metrics;
use crate::net::NetworkConfig;
use crate::process::{NodeId, Payload, Process};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::sync::Arc;

/// Buffered fan-out of one payload: unicast or multicast.
enum Fanout {
    One(NodeId),
    Many(Vec<NodeId>),
}

/// Handler-side view of the world, passed to every [`Process`] callback.
///
/// Outputs (sends, timers, charges) are buffered and applied by the world
/// after the handler returns, which keeps handlers free of aliasing issues
/// and makes the instant of each side effect well-defined:
///
/// * a message sent after `charge(w)` departs `w` after the handler began;
/// * the node's CPU stays busy until all charged work completes, delaying
///   subsequent events to this node (queueing).
pub struct Ctx<'a, M: Payload> {
    now: SimTime,
    self_id: NodeId,
    charged: SimDuration,
    sends: Vec<(Fanout, Arc<M>, SimDuration, bool)>,
    timers: Vec<(SimTime, u64, u64)>,
    cancels: Vec<u64>,
    rng: &'a mut SmallRng,
    metrics: &'a mut Metrics,
    costs: &'a CostModel,
    next_timer_id: &'a mut u64,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// Current virtual time (when this handler started running).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to`; it departs after the work charged so far.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends
            .push((Fanout::One(to), Arc::new(msg), self.charged, true));
    }

    /// Sends one shared payload to every node in `to`, in order.
    ///
    /// The event queue holds N pointers to a single allocation instead
    /// of N deep clones; each delivery but the last clones the payload
    /// out for its handler.  Delivery order and latency sampling are
    /// identical to N consecutive [`Ctx::send`] calls.
    pub fn multicast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        self.sends.push((
            Fanout::Many(to.into_iter().collect()),
            Arc::new(msg),
            self.charged,
            true,
        ));
    }

    /// Sends an already-shared payload to `to`, counting its allocation
    /// as resident (the sender built it fresh but keeps a handle, e.g. in
    /// a cache it now owns).
    pub fn send_shared(&mut self, to: NodeId, msg: Arc<M>) {
        self.sends.push((Fanout::One(to), msg, self.charged, true));
    }

    /// Sends a payload whose allocation was already accounted for (a
    /// cache hit re-serving a previously built reply): logical bytes
    /// grow, resident bytes do not, so `msg_sharing_ratio` counts the
    /// re-serve as sharing.
    pub fn send_cached(&mut self, to: NodeId, msg: Arc<M>) {
        self.sends.push((Fanout::One(to), msg, self.charged, false));
    }

    /// Arms a timer firing `delay` from now; returns an id for cancellation.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> u64 {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.timers.push((self.now + delay, tag, id));
        id
    }

    /// Cancels a previously armed timer by id.
    pub fn cancel_timer(&mut self, id: u64) {
        self.cancels.push(id);
    }

    /// Charges `work` of virtual CPU time to this node.
    pub fn charge(&mut self, work: SimDuration) {
        self.charged += work;
    }

    /// Total work charged so far in this handler.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Samples a uniform `[0,1)` float (convenience for probability checks).
    pub fn coin(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// The world's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// The world's virtual cost model.
    pub fn costs(&self) -> &CostModel {
        self.costs
    }
}

struct NodeMeta {
    name: String,
    cpu_free_at: SimTime,
    busy_total: SimDuration,
    crashed: bool,
    island: u32,
    incarnation: u32,
}

/// The discrete-event simulation world.
///
/// Owns all processes, the event queue, the network model, per-node RNG
/// streams, and the metrics registry.  See the crate docs for the
/// determinism contract.
pub struct World<M: Payload> {
    time: SimTime,
    queue: EventQueue<M>,
    procs: Vec<Option<Box<dyn Process<M>>>>,
    meta: Vec<NodeMeta>,
    net: NetworkConfig,
    net_rng: SmallRng,
    rngs: Vec<SmallRng>,
    metrics: Metrics,
    costs: CostModel,
    next_timer_id: u64,
    seed: u64,
    events_processed: u64,
    msg_bytes_logical: u64,
    msg_bytes_resident: u64,
}

impl<M: Payload> World<M> {
    /// Creates a world with the given seed, network, and cost model.
    pub fn new(seed: u64, net: NetworkConfig, costs: CostModel) -> Self {
        World {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            procs: Vec::new(),
            meta: Vec::new(),
            net,
            net_rng: SmallRng::seed_from_u64(seed ^ 0xD6E8_FEB8_6659_FD93),
            rngs: Vec::new(),
            metrics: Metrics::new(),
            costs,
            next_timer_id: 0,
            seed,
            events_processed: 0,
            msg_bytes_logical: 0,
            msg_bytes_resident: 0,
        }
    }

    /// Adds a process; `on_start` runs immediately at the current time.
    pub fn spawn(&mut self, name: impl Into<String>, process: Box<dyn Process<M>>) -> NodeId {
        let id = NodeId(self.procs.len() as u32);
        let node_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(id.0) + 1);
        self.procs.push(Some(process));
        self.meta.push(NodeMeta {
            name: name.into(),
            cpu_free_at: self.time,
            busy_total: SimDuration::ZERO,
            crashed: false,
            island: 0,
            incarnation: 0,
        });
        self.rngs.push(SmallRng::seed_from_u64(node_seed));
        let at = self.time;
        self.dispatch(id, at, |p, ctx| p.on_start(ctx));
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of nodes spawned.
    pub fn node_count(&self) -> usize {
        self.procs.len()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The node's display name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.meta[id.index()].name
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.meta[id.index()].crashed
    }

    /// Total CPU work this node has performed.
    pub fn busy_total(&self, id: NodeId) -> SimDuration {
        self.meta[id.index()].busy_total
    }

    /// CPU utilisation of `id` over the elapsed simulation time (0..=1).
    pub fn utilisation(&self, id: NodeId) -> f64 {
        if self.time == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total(id).as_micros() as f64 / self.time.as_micros() as f64
    }

    /// Schedules a message delivery from the outside world (test harness).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        let at = self.time;
        let msg = Arc::new(msg);
        let size = msg.wire_len() as u64;
        if self.route(from, to, at, msg) {
            self.msg_bytes_logical += size;
            self.msg_bytes_resident += size;
        }
    }

    /// Schedules a crash of `node` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Crash(node));
    }

    /// Schedules a recovery of `node` at time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Recover(node));
    }

    /// Assigns `node` to a partition island; nodes on different islands
    /// cannot exchange messages.  All nodes start on island 0.
    pub fn set_island(&mut self, node: NodeId, island: u32) {
        self.meta[node.index()].island = island;
    }

    /// Heals all partitions (everyone back to island 0).
    pub fn heal_partitions(&mut self) {
        for m in &mut self.meta {
            m.island = 0;
        }
    }

    /// Mutable, typed access to a process for inspection or test-harness
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or the process is not a `P`.
    pub fn with_process<P: Process<M>, R>(&mut self, id: NodeId, f: impl FnOnce(&mut P) -> R) -> R {
        let slot = self.procs[id.index()].as_mut().expect("process present");
        let any: &mut dyn Any = slot.as_mut();
        let typed = any
            .downcast_mut::<P>()
            .unwrap_or_else(|| panic!("node {} is not a {}", id, std::any::type_name::<P>()));
        f(typed)
    }

    /// Runs until the queue is exhausted or `deadline` is reached; the
    /// world's clock ends at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.time + d;
        self.run_until(deadline);
    }

    /// Runs until the event queue is empty (beware infinite timer loops).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Event-queue depth and slab telemetry.
    pub fn queue_depth(&self) -> QueueDepthStats {
        self.queue.depth_stats()
    }

    /// Sum of wire sizes over every enqueued delivery — the bytes the
    /// queue would hold if each delivery carried its own copy.
    pub fn msg_bytes_logical(&self) -> u64 {
        self.msg_bytes_logical
    }

    /// Wire bytes of unique payload allocations enqueued: a multicast's
    /// fan-out counts once here but N times in the logical figure, so
    /// `logical / resident` is the payload-sharing ratio.
    pub fn msg_bytes_resident(&self) -> u64 {
        self.msg_bytes_resident
    }

    /// Processes one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Event { at, kind, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "time went backwards");
        self.time = at;
        self.events_processed += 1;

        match kind {
            EventKind::Deliver { to, from, msg } => {
                let meta = &self.meta[to.index()];
                if meta.crashed {
                    self.metrics.inc("sim.dropped_to_crashed");
                    return true;
                }
                if meta.cpu_free_at > at {
                    // Node is busy: the message waits in its input queue.
                    let free = meta.cpu_free_at;
                    self.queue.push(free, EventKind::Deliver { to, from, msg });
                    return true;
                }
                // Hand the payload to the handler by value: the last
                // holder of a shared payload takes it without copying.
                let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                self.dispatch(to, at, |p, ctx| p.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag, id } => {
                let _ = id;
                let meta = &self.meta[node.index()];
                if meta.crashed {
                    return true;
                }
                if meta.cpu_free_at > at {
                    let free = meta.cpu_free_at;
                    self.queue.push(free, EventKind::Timer { node, tag, id });
                    return true;
                }
                self.dispatch(node, at, |p, ctx| p.on_timer(ctx, tag));
            }
            EventKind::Crash(node) => {
                if !self.meta[node.index()].crashed {
                    self.meta[node.index()].crashed = true;
                    self.metrics.inc("sim.crashes");
                    self.dispatch(node, at, |p, ctx| p.on_crash(ctx));
                }
            }
            EventKind::Recover(node) => {
                if self.meta[node.index()].crashed {
                    self.meta[node.index()].crashed = false;
                    self.meta[node.index()].incarnation += 1;
                    self.meta[node.index()].cpu_free_at = at;
                    self.metrics.inc("sim.recoveries");
                    self.dispatch(node, at, |p, ctx| p.on_recover(ctx));
                }
            }
        }
        true
    }

    fn dispatch<F>(&mut self, node: NodeId, at: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Ctx<'_, M>),
    {
        let mut proc = self.procs[node.index()]
            .take()
            .expect("re-entrant dispatch");
        let mut ctx = Ctx {
            now: at,
            self_id: node,
            charged: SimDuration::ZERO,
            sends: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            rng: &mut self.rngs[node.index()],
            metrics: &mut self.metrics,
            costs: &self.costs,
            next_timer_id: &mut self.next_timer_id,
        };
        f(proc.as_mut(), &mut ctx);

        let Ctx {
            charged,
            sends,
            timers,
            cancels,
            ..
        } = ctx;

        self.procs[node.index()] = Some(proc);
        // NOTE: a crash during dispatch is impossible (crashes are events),
        // so meta updates after the handler are safe.
        self.meta[node.index()].cpu_free_at = at + charged;
        self.meta[node.index()].busy_total += charged;

        for (targets, msg, offset, resident) in sends {
            let depart = at + offset;
            let size = msg.wire_len() as u64;
            let enqueued = match targets {
                Fanout::One(to) => u64::from(self.route(node, to, depart, msg)),
                Fanout::Many(tos) => tos
                    .into_iter()
                    .map(|to| u64::from(self.route(node, to, depart, Arc::clone(&msg))))
                    .sum(),
            };
            if enqueued > 0 {
                self.msg_bytes_logical += size * enqueued;
                if resident {
                    self.msg_bytes_resident += size;
                }
            }
        }
        for (fire_at, tag, id) in timers {
            self.queue.push(fire_at, EventKind::Timer { node, tag, id });
        }
        for id in cancels {
            self.queue.cancel_timer(id);
        }
    }

    /// Enqueues one delivery; returns whether it survived partitions
    /// and loss (i.e. whether the queue now holds a reference to `msg`).
    fn route(&mut self, from: NodeId, to: NodeId, depart: SimTime, msg: Arc<M>) -> bool {
        if to == from {
            // Local delivery bypasses the network.
            self.queue.push(depart, EventKind::Deliver { to, from, msg });
            return true;
        }
        let (fi, ti) = (
            self.meta[from.index()].island,
            self.meta[to.index()].island,
        );
        if fi != ti {
            self.metrics.inc("sim.partitioned_drops");
            return false;
        }
        let link = *self.net.link(from, to);
        if link.loss > 0.0 && self.net_rng.gen::<f64>() < link.loss {
            self.metrics.inc("sim.lost_messages");
            return false;
        }
        let mut latency = link.latency.sample(&mut self.net_rng);
        let size = msg.wire_len();
        if size > 0 && link.per_byte > SimDuration::ZERO {
            latency += SimDuration(link.per_byte.as_micros() * size as u64);
        }
        self.metrics.inc("sim.messages_sent");
        self.queue
            .push(depart + latency, EventKind::Deliver { to, from, msg });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkModel;
    use crate::ring::RingLog;

    /// Harness logs stay bounded so soak runs can't grow without limit.
    const LOG_CAP: usize = 1_024;

    /// Echoes every message back to its sender after charging `work`.
    struct Echo {
        work: SimDuration,
        received: RingLog<(SimTime, u64)>,
    }

    impl Process<u64> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
            ctx.charge(self.work);
            if msg < 100 {
                ctx.send(from, msg + 1);
            }
        }
        fn name(&self) -> String {
            "echo".into()
        }
    }

    /// Fires a periodic timer, counting invocations.
    struct Ticker {
        period: SimDuration,
        fired: RingLog<SimTime>,
    }

    impl Process<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
            self.fired.push(ctx.now());
            ctx.set_timer(self.period, 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: NodeId, _msg: u64) {}
    }

    fn world(latency_ms: u64) -> World<u64> {
        World::new(
            7,
            NetworkConfig::new(LinkModel::constant(SimDuration::from_millis(latency_ms))),
            CostModel::standard(),
        )
    }

    #[test]
    fn ping_pong_respects_latency() {
        let mut w = world(10);
        let a = w.spawn(
            "a",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        let b = w.spawn(
            "b",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        w.inject(a, b, 0);
        w.run_until(SimTime::from_millis(100));
        // b receives 0 at 10ms, a receives 1 at 20ms, ...
        w.with_process::<Echo, _>(b, |p| {
            assert_eq!(p.received.get(0), Some(&(SimTime::from_millis(10), 0)));
            assert_eq!(p.received.get(1), Some(&(SimTime::from_millis(30), 2)));
        });
        w.with_process::<Echo, _>(a, |p| {
            assert_eq!(p.received.get(0), Some(&(SimTime::from_millis(20), 1)));
        });
    }

    #[test]
    fn periodic_timer_fires_on_schedule() {
        let mut w = world(1);
        let t = w.spawn(
            "tick",
            Box::new(Ticker {
                period: SimDuration::from_millis(7),
                fired: RingLog::new(LOG_CAP),
            }),
        );
        w.run_until(SimTime::from_millis(30));
        w.with_process::<Ticker, _>(t, |p| {
            assert_eq!(
                p.fired.iter().copied().collect::<Vec<_>>(),
                vec![
                    SimTime::from_millis(7),
                    SimTime::from_millis(14),
                    SimTime::from_millis(21),
                    SimTime::from_millis(28)
                ]
            );
        });
    }

    #[test]
    fn busy_cpu_delays_subsequent_messages() {
        let mut w = world(10);
        let a = w.spawn(
            "src",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        let b = w.spawn(
            "busy",
            Box::new(Echo {
                work: SimDuration::from_millis(50),
                received: RingLog::new(LOG_CAP),
            }),
        );
        // Two back-to-back messages; both arrive at t=10ms, but the second
        // must wait for the 50ms of work the first one triggers.
        w.inject(a, b, 200);
        w.inject(a, b, 300);
        w.run_until(SimTime::from_millis(200));
        w.with_process::<Echo, _>(b, |p| {
            assert_eq!(p.received.get(0).unwrap().0, SimTime::from_millis(10));
            assert_eq!(p.received.get(1).unwrap().0, SimTime::from_millis(60));
        });
        assert_eq!(w.busy_total(b), SimDuration::from_millis(100));
    }

    #[test]
    fn crash_drops_messages_and_recover_resumes() {
        let mut w = world(5);
        let a = w.spawn(
            "a",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        let b = w.spawn(
            "b",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        w.schedule_crash(SimTime::from_millis(1), b);
        w.inject(a, b, 200); // Arrives at 5ms: dropped (crashed).
        w.schedule_recover(SimTime::from_millis(10), b);
        w.run_until(SimTime::from_millis(8));
        assert!(w.is_crashed(b));
        w.run_until(SimTime::from_millis(12));
        assert!(!w.is_crashed(b));
        w.inject(a, b, 300); // Arrives at 17ms: delivered.
        w.run_until(SimTime::from_millis(30));
        w.with_process::<Echo, _>(b, |p| {
            assert_eq!(p.received.len(), 1);
            assert_eq!(p.received.get(0).unwrap().1, 300);
        });
        assert_eq!(w.metrics().counter("sim.dropped_to_crashed"), 1);
    }

    #[test]
    fn partitions_block_traffic_until_healed() {
        let mut w = world(5);
        let a = w.spawn(
            "a",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        let b = w.spawn(
            "b",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        w.set_island(b, 1);
        w.inject(a, b, 1);
        w.run_until(SimTime::from_millis(20));
        w.with_process::<Echo, _>(b, |p| assert!(p.received.is_empty()));
        assert_eq!(w.metrics().counter("sim.partitioned_drops"), 1);

        w.heal_partitions();
        w.inject(a, b, 2);
        w.run_until(SimTime::from_millis(40));
        // The echo chain keeps bouncing after the heal; what matters is
        // that the first delivered message is the post-heal one.
        w.with_process::<Echo, _>(b, |p| {
            assert!(!p.received.is_empty());
            assert_eq!(p.received.get(0).unwrap().1, 2);
        });
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelSelf {
            fired: bool,
        }
        impl Process<u64> for CancelSelf {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                let id = ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.cancel_timer(id);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _tag: u64) {
                self.fired = true;
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, u64>, _f: NodeId, _m: u64) {}
        }
        let mut w = world(1);
        let n = w.spawn("c", Box::new(CancelSelf { fired: false }));
        w.run_until(SimTime::from_millis(50));
        w.with_process::<CancelSelf, _>(n, |p| assert!(!p.fired));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<(SimTime, u64)> {
            let mut w = World::new(
                seed,
                NetworkConfig::new(LinkModel {
                    latency: crate::net::LatencyModel::Exponential(SimDuration::from_millis(10)),
                    loss: 0.1,
                    per_byte: SimDuration::ZERO,
                }),
                CostModel::standard(),
            );
            let a = w.spawn(
                "a",
                Box::new(Echo {
                    work: SimDuration::ZERO,
                    received: RingLog::new(LOG_CAP),
                }),
            );
            let b = w.spawn(
                "b",
                Box::new(Echo {
                    work: SimDuration::from_micros(100),
                    received: RingLog::new(LOG_CAP),
                }),
            );
            for i in 0..20 {
                w.inject(a, b, i);
            }
            w.run_until(SimTime::from_secs(5));
            w.with_process::<Echo, _>(b, |p| p.received.iter().copied().collect::<Vec<_>>())
        }
        assert_eq!(trace(123), trace(123));
        assert_ne!(trace(123), trace(456));
    }

    #[test]
    fn utilisation_accounting() {
        let mut w = world(1);
        let b = w.spawn(
            "busy",
            Box::new(Echo {
                work: SimDuration::from_millis(10),
                received: RingLog::new(LOG_CAP),
            }),
        );
        w.inject(b, b, 200); // Self-send: immediate delivery.
        w.run_until(SimTime::from_millis(100));
        let u = w.utilisation(b);
        assert!((0.09..0.11).contains(&u), "utilisation {u}");
    }

    #[test]
    fn run_to_quiescence_drains_queue() {
        let mut w = world(1);
        let a = w.spawn(
            "a",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        let b = w.spawn(
            "b",
            Box::new(Echo {
                work: SimDuration::ZERO,
                received: RingLog::new(LOG_CAP),
            }),
        );
        w.inject(a, b, 95); // Echo chain stops at 100.
        w.run_to_quiescence();
        assert!(w.events_processed() > 4);
    }
}
