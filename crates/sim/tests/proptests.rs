//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use sdr_sim::event::{EventKind, EventQueue};
use sdr_sim::{LatencyModel, Metrics, NodeId, SimDuration, SimTime};

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// nondecreasing time order, and equal times preserve insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime(t),
                EventKind::Deliver {
                    to: NodeId(0),
                    from: NodeId(0),
                    msg: i as u64,
                },
            );
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some(ev) = q.pop() {
            let EventKind::Deliver { msg, .. } = ev.kind else { unreachable!() };
            popped.push((ev.at.0, msg));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
    }

    /// Uniform latency samples always stay within their bounds, and
    /// constant models never vary.
    #[test]
    fn latency_models_respect_bounds(
        lo in 0u64..10_000,
        span in 0u64..10_000,
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let uni = LatencyModel::Uniform(SimDuration(lo), SimDuration(lo + span));
        for _ in 0..100 {
            let s = uni.sample(&mut rng).as_micros();
            prop_assert!((lo..=lo + span).contains(&s));
        }
        let c = LatencyModel::Constant(SimDuration(lo));
        prop_assert_eq!(c.sample(&mut rng), SimDuration(lo));
    }

    /// Metrics merge is additive on counters and concatenates histograms.
    #[test]
    fn metrics_merge_is_additive(
        a in proptest::collection::vec(1u64..100, 0..20),
        b in proptest::collection::vec(1u64..100, 0..20),
    ) {
        let mut ma = Metrics::new();
        let mut mb = Metrics::new();
        for &v in &a {
            ma.add("x", v);
            ma.observe("h", v);
        }
        for &v in &b {
            mb.add("x", v);
            mb.observe("h", v);
        }
        let (sa, sb): (u64, u64) = (a.iter().sum(), b.iter().sum());
        ma.merge(&mb);
        prop_assert_eq!(ma.counter("x"), sa + sb);
        prop_assert_eq!(ma.summary("h").count, a.len() + b.len());
    }

    /// Histogram quantiles are monotone in the quantile argument and
    /// bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut m = Metrics::new();
        for &v in &values {
            m.observe("h", v);
        }
        let h = m.histogram_mut("h");
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (vlo, vhi) = (h.quantile(lo), h.quantile(hi));
        prop_assert!(vlo <= vhi, "quantiles not monotone: q({lo})={vlo} > q({hi})={vhi}");
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        prop_assert!((min..=max).contains(&vlo));
        prop_assert!((min..=max).contains(&vhi));
    }

    /// SimTime/SimDuration arithmetic is consistent: (t + d) - t == d and
    /// ordering follows the raw microseconds.
    #[test]
    fn time_arithmetic_consistent(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime(t);
        let dur = SimDuration(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur).since(t0), dur);
        prop_assert!(t0 + dur >= t0);
    }
}
