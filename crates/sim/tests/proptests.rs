//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use sdr_sim::event::{BaselineHeap, EventKind, EventQueue};
use sdr_sim::{LatencyModel, Metrics, NodeId, SimDuration, SimTime};
use std::sync::Arc;

/// One step of an arbitrary scheduler workload (see the oracle test).
#[derive(Clone, Debug)]
enum QueueOp {
    /// Push a deliver event at now + delay.
    Push(u64),
    /// Push a timer at now + delay.
    PushTimer(u64),
    /// Cancel the n-th armed timer (mod the number armed so far).
    Cancel(usize),
    /// Pop the earliest event (advances "now").
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        // Delays span all three tiers: current window (µs), the near
        // wheel (ms), and the far heap (seconds).
        (0u64..2_000_000).prop_map(QueueOp::Push),
        (0u64..2_000_000).prop_map(QueueOp::PushTimer),
        proptest::arbitrary::any::<usize>().prop_map(QueueOp::Cancel),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
    ]
}

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// nondecreasing time order, and equal times preserve insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime(t),
                EventKind::Deliver {
                    to: NodeId(0),
                    from: NodeId(0),
                    msg: Arc::new(i as u64),
                },
            );
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some(ev) = q.pop() {
            let EventKind::Deliver { msg, .. } = ev.kind else { unreachable!() };
            popped.push((ev.at.0, *msg));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
    }

    /// Differential oracle: for arbitrary interleavings of pushes,
    /// timer cancellations, and pops, the bucket queue yields exactly
    /// the `(time, seq)` sequence of the seed `BinaryHeap` scheduler
    /// (cancelled timers modelled there as a lazy tombstone set, as the
    /// seed world did).
    #[test]
    fn bucket_queue_matches_baseline_heap_with_cancels(
        ops in proptest::collection::vec(queue_op(), 1..400),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut heap: BaselineHeap<Option<u64>> = BaselineHeap::new();
        let mut cancelled: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut armed: Vec<u64> = Vec::new();
        let mut next_timer = 0u64;
        let mut now = 0u64;
        let mut got: Vec<(u64, u64)> = Vec::new();
        let mut want: Vec<(u64, u64)> = Vec::new();

        for op in &ops {
            match op {
                QueueOp::Push(delay) => {
                    let at = SimTime(now + delay);
                    q.push(at, EventKind::Deliver {
                        to: NodeId(0),
                        from: NodeId(0),
                        msg: Arc::new(0),
                    });
                    heap.push(at, None);
                }
                QueueOp::PushTimer(delay) => {
                    let at = SimTime(now + delay);
                    let id = next_timer;
                    next_timer += 1;
                    armed.push(id);
                    q.push(at, EventKind::Timer { node: NodeId(0), tag: 0, id });
                    heap.push(at, Some(id));
                }
                QueueOp::Cancel(n) => {
                    if !armed.is_empty() {
                        let id = armed[n % armed.len()];
                        q.cancel_timer(id);
                        cancelled.insert(id);
                    }
                }
                QueueOp::Pop => {
                    // The baseline pops tombstones silently, exactly as
                    // the seed world's cancelled-set check did.
                    let base = loop {
                        match heap.pop() {
                            Some((_, _, Some(id))) if cancelled.contains(&id) => continue,
                            other => break other,
                        }
                    };
                    let ours = q.pop();
                    match (ours, base) {
                        (Some(ev), Some((at, seq, _))) => {
                            prop_assert_eq!(ev.at, at, "time mismatch");
                            prop_assert_eq!(ev.seq, seq, "seq mismatch");
                            now = ev.at.0;
                            got.push((ev.at.0, ev.seq));
                            want.push((at.0, seq));
                        }
                        (None, None) => {}
                        (a, b) => prop_assert!(false, "pop divergence: {a:?} vs {b:?}"),
                    }
                }
            }
        }
        // Drain both to the end.
        loop {
            let base = loop {
                match heap.pop() {
                    Some((_, _, Some(id))) if cancelled.contains(&id) => continue,
                    other => break other,
                }
            };
            match (q.pop(), base) {
                (Some(ev), Some((at, seq, _))) => {
                    got.push((ev.at.0, ev.seq));
                    want.push((at.0, seq));
                }
                (None, None) => break,
                (a, b) => prop_assert!(false, "drain divergence: {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Uniform latency samples always stay within their bounds, and
    /// constant models never vary.
    #[test]
    fn latency_models_respect_bounds(
        lo in 0u64..10_000,
        span in 0u64..10_000,
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let uni = LatencyModel::Uniform(SimDuration(lo), SimDuration(lo + span));
        for _ in 0..100 {
            let s = uni.sample(&mut rng).as_micros();
            prop_assert!((lo..=lo + span).contains(&s));
        }
        let c = LatencyModel::Constant(SimDuration(lo));
        prop_assert_eq!(c.sample(&mut rng), SimDuration(lo));
    }

    /// Metrics merge is additive on counters and concatenates histograms.
    #[test]
    fn metrics_merge_is_additive(
        a in proptest::collection::vec(1u64..100, 0..20),
        b in proptest::collection::vec(1u64..100, 0..20),
    ) {
        let mut ma = Metrics::new();
        let mut mb = Metrics::new();
        for &v in &a {
            ma.add("x", v);
            ma.observe("h", v);
        }
        for &v in &b {
            mb.add("x", v);
            mb.observe("h", v);
        }
        let (sa, sb): (u64, u64) = (a.iter().sum(), b.iter().sum());
        ma.merge(&mb);
        prop_assert_eq!(ma.counter("x"), sa + sb);
        prop_assert_eq!(ma.summary("h").count, a.len() + b.len());
    }

    /// Histogram quantiles are monotone in the quantile argument and
    /// bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut m = Metrics::new();
        for &v in &values {
            m.observe("h", v);
        }
        let h = m.histogram_mut("h");
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (vlo, vhi) = (h.quantile(lo), h.quantile(hi));
        prop_assert!(vlo <= vhi, "quantiles not monotone: q({lo})={vlo} > q({hi})={vhi}");
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        prop_assert!((min..=max).contains(&vlo));
        prop_assert!((min..=max).contains(&vhi));
    }

    /// SimTime/SimDuration arithmetic is consistent: (t + d) - t == d and
    /// ordering follows the raw microseconds.
    #[test]
    fn time_arithmetic_consistent(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime(t);
        let dur = SimDuration(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur).since(t0), dur);
        prop_assert!(t0 + dur >= t0);
    }
}
