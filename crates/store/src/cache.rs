//! Query-result cache keyed by `(content_version, query)`.
//!
//! Section 3.4: the auditor "can, for certain types of applications …
//! employ query optimization mechanisms (cache results in the simplest
//! case)".  Because the auditor replays *every* pledged read, and popular
//! reads repeat, caching per version is highly effective; experiment E7
//! quantifies the effect.

use crate::query::{Query, QueryResult};
use sdr_crypto::{Digest, Hash256, Sha256};
use std::collections::{HashMap, VecDeque};

/// A bounded FIFO cache of query results, keyed by version + query hash.
#[derive(Clone, Debug)]
pub struct QueryCache {
    map: HashMap<Hash256, QueryResult>,
    order: VecDeque<Hash256>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache key for a query at a content version.
    pub fn key(version: u64, query: &Query) -> Hash256 {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(b"sdr/cache/v1");
        buf.extend_from_slice(&version.to_be_bytes());
        query.encode_into(&mut buf);
        Sha256::digest(&buf)
    }

    /// Looks up a result; updates hit/miss counters.
    pub fn get(&mut self, version: u64, query: &Query) -> Option<QueryResult> {
        let key = Self::key(version, query);
        match self.map.get(&key) {
            Some(r) => {
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the oldest entry when full.
    pub fn put(&mut self, version: u64, query: &Query, result: QueryResult) {
        let key = Self::key(version, query);
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, result);
        self.order.push_back(key);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all entries (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn q(key: u64) -> Query {
        Query::GetRow {
            table: "t".into(),
            key,
        }
    }
    fn r(v: i64) -> QueryResult {
        QueryResult::Scalar(Value::Int(v))
    }

    #[test]
    fn hit_after_put() {
        let mut c = QueryCache::new(10);
        assert_eq!(c.get(1, &q(1)), None);
        c.put(1, &q(1), r(42));
        assert_eq!(c.get(1, &q(1)), Some(r(42)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn version_is_part_of_key() {
        let mut c = QueryCache::new(10);
        c.put(1, &q(1), r(42));
        assert_eq!(c.get(2, &q(1)), None, "stale version must miss");
    }

    #[test]
    fn eviction_is_fifo() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        c.put(1, &q(2), r(2));
        c.put(1, &q(3), r(3)); // Evicts q(1).
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, &q(1)), None);
        assert_eq!(c.get(1, &q(2)), Some(r(2)));
        assert_eq!(c.get(1, &q(3)), Some(r(3)));
    }

    #[test]
    fn duplicate_put_is_noop() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        c.put(1, &q(1), r(99));
        assert_eq!(c.get(1, &q(1)), Some(r(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        let _ = c.get(1, &q(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
    }
}
