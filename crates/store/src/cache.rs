//! Read-side caches: the auditor's query-result cache and the slave's
//! byte-budgeted proof/reply cache.
//!
//! Section 3.4: the auditor "can, for certain types of applications …
//! employ query optimization mechanisms (cache results in the simplest
//! case)".  Because the auditor replays *every* pledged read, and popular
//! reads repeat, caching per version is highly effective; experiment E7
//! quantifies the effect.
//!
//! [`LruByteCache`] extends the same idea to the hot-read fast path: a
//! slave serving a flash crowd memoizes the *assembled* proof reply per
//! `(anchor, query)` so N readers of one hot key cost one O(log n) proof
//! build plus N pointer bumps.  Correctness never depends on the cache —
//! it stores only values the slave just computed, keys include the
//! anchoring stamp (version **and** timestamp), and the owner wipes it
//! wholesale whenever its replica state or anchor changes.

use crate::query::{Query, QueryResult};
use sdr_crypto::{Digest, Hash256, Sha256};
use std::collections::{HashMap, VecDeque};

/// A bounded FIFO cache of query results, keyed by version + query hash.
#[derive(Clone, Debug)]
pub struct QueryCache {
    map: HashMap<Hash256, QueryResult>,
    order: VecDeque<Hash256>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache key for a query at a content version.
    pub fn key(version: u64, query: &Query) -> Hash256 {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(b"sdr/cache/v1");
        buf.extend_from_slice(&version.to_be_bytes());
        query.encode_into(&mut buf);
        Sha256::digest(&buf)
    }

    /// Looks up a result; updates hit/miss counters.
    pub fn get(&mut self, version: u64, query: &Query) -> Option<QueryResult> {
        let key = Self::key(version, query);
        match self.map.get(&key) {
            Some(r) => {
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the oldest entry when full.
    pub fn put(&mut self, version: u64, query: &Query, result: QueryResult) {
        let key = Self::key(version, query);
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, result);
        self.order.push_back(key);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all entries (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// A byte-budgeted LRU cache keyed by [`Hash256`].
///
/// Values carry an explicit byte weight supplied at insert time (the
/// store cannot size arbitrary `V`s itself); the cache evicts
/// least-recently-used entries until the total weight fits the budget.
/// Recency is a monotonic tick bumped on every get/put — eviction scans
/// for the minimum tick, which is O(entries) but entries are few (a
/// 1 MiB budget holds ~hundreds of proof replies) and eviction is rare
/// outside sustained cold scans.
///
/// `clear()` drops all entries and counts one invalidation; hit/miss/
/// eviction counters survive so end-of-run telemetry sees the whole
/// history.
#[derive(Clone, Debug)]
pub struct LruByteCache<V> {
    map: HashMap<Hash256, (V, usize, u64)>,
    budget: usize,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl<V> LruByteCache<V> {
    /// Creates a cache holding at most `budget` bytes of values.
    pub fn new(budget: usize) -> Self {
        LruByteCache {
            map: HashMap::new(),
            budget,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks up `key`, refreshing its recency; counts a hit or miss.
    pub fn get(&mut self, key: &Hash256) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((v, _, t)) => {
                *t = self.tick;
                self.hits += 1;
                Some(&*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` weighing `bytes`, evicting LRU entries until the
    /// budget holds; returns how many entries were evicted.  A value
    /// bigger than the whole budget is not inserted (returns 0 evictions
    /// and leaves the cache untouched).
    pub fn put(&mut self, key: Hash256, value: V, bytes: usize) -> u64 {
        if bytes > self.budget {
            return 0;
        }
        self.tick += 1;
        if let Some((_, old_bytes, _)) = self.map.remove(&key) {
            self.bytes -= old_bytes;
        }
        let mut evicted = 0;
        while self.bytes + bytes > self.budget {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some((_, b, _)) = self.map.remove(&lru) {
                self.bytes -= b;
            }
            evicted += 1;
        }
        self.map.insert(key, (value, bytes, self.tick));
        self.bytes += bytes;
        self.evictions += evicted;
        evicted
    }

    /// Drops all entries; counts one invalidation, keeps counters.
    pub fn clear(&mut self) {
        if !self.map.is_empty() {
            self.invalidations += 1;
        }
        self.map.clear();
        self.bytes = 0;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current total byte weight of cached values.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the byte budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Wholesale `clear()`s so far (only non-empty clears count).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn q(key: u64) -> Query {
        Query::GetRow {
            table: "t".into(),
            key,
        }
    }
    fn r(v: i64) -> QueryResult {
        QueryResult::Scalar(Value::Int(v))
    }

    #[test]
    fn hit_after_put() {
        let mut c = QueryCache::new(10);
        assert_eq!(c.get(1, &q(1)), None);
        c.put(1, &q(1), r(42));
        assert_eq!(c.get(1, &q(1)), Some(r(42)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn version_is_part_of_key() {
        let mut c = QueryCache::new(10);
        c.put(1, &q(1), r(42));
        assert_eq!(c.get(2, &q(1)), None, "stale version must miss");
    }

    #[test]
    fn eviction_is_fifo() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        c.put(1, &q(2), r(2));
        c.put(1, &q(3), r(3)); // Evicts q(1).
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, &q(1)), None);
        assert_eq!(c.get(1, &q(2)), Some(r(2)));
        assert_eq!(c.get(1, &q(3)), Some(r(3)));
    }

    #[test]
    fn duplicate_put_is_noop() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        c.put(1, &q(1), r(99));
        assert_eq!(c.get(1, &q(1)), Some(r(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = QueryCache::new(2);
        c.put(1, &q(1), r(1));
        let _ = c.get(1, &q(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
    }

    fn h(n: u8) -> Hash256 {
        Sha256::digest(&[n])
    }

    #[test]
    fn lru_hit_miss_and_bytes() {
        let mut c = LruByteCache::new(100);
        assert!(c.get(&h(1)).is_none());
        assert_eq!(c.put(h(1), "a", 40), 0);
        assert_eq!(c.get(&h(1)), Some(&"a"));
        assert_eq!((c.hits(), c.misses(), c.bytes()), (1, 1, 40));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruByteCache::new(100);
        c.put(h(1), 1u32, 40);
        c.put(h(2), 2u32, 40);
        let _ = c.get(&h(1)); // 1 is now fresher than 2.
        assert_eq!(c.put(h(3), 3u32, 40), 1); // Evicts 2.
        assert!(c.get(&h(2)).is_none());
        assert_eq!(c.get(&h(1)), Some(&1));
        assert_eq!(c.get(&h(3)), Some(&3));
        assert_eq!(c.evictions(), 1);
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn lru_oversized_value_is_skipped() {
        let mut c = LruByteCache::new(100);
        c.put(h(1), 1u32, 40);
        assert_eq!(c.put(h(2), 2u32, 101), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&h(1)), Some(&1));
    }

    #[test]
    fn lru_replace_updates_weight() {
        let mut c = LruByteCache::new(100);
        c.put(h(1), 1u32, 90);
        c.put(h(1), 2u32, 10);
        assert_eq!((c.bytes(), c.len()), (10, 1));
        assert_eq!(c.get(&h(1)), Some(&2));
    }

    #[test]
    fn lru_clear_counts_invalidation_once_and_keeps_counters() {
        let mut c = LruByteCache::new(100);
        c.put(h(1), 1u32, 10);
        let _ = c.get(&h(1));
        c.clear();
        c.clear(); // Empty clear is not an invalidation.
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!((c.hits(), c.invalidations()), (1, 1));
    }
}
