//! Content-defined chunking and the content-addressed chunk store.
//!
//! Files are split at *content-defined* cut points found by a gear
//! rolling hash, so an edit moves only the chunk boundaries near the
//! touched bytes: appending to a file re-chunks the tail chunk alone,
//! and two files sharing most of their content share most of their
//! chunks.  Chunks are stored once, keyed by their commitment digest
//! ([`ChunkId`], `sdr_crypto::chunk_hash`) and reference-counted across
//! files ([`ChunkStore`]); each file keeps a [`FileManifest`] — the
//! ordered list of chunk digests and lengths — whose canonical encoding
//! is what the file tree's Merkle digest commits to.  A streamed read
//! therefore verifies chunk-by-chunk: manifest entry → chunk digest →
//! chunk bytes, with the manifest itself bound to the master-signed
//! state digest by an O(log n) inclusion proof.
//!
//! Chunking is fully deterministic (a compile-time gear table, no
//! platform-dependent state), and the rolling hash *restarts at every
//! cut*, so the boundaries after a cut depend only on the bytes after
//! it.  That restart is what makes appends O(chunk): re-chunking
//! `tail-chunk ‖ appended-bytes` yields exactly the chunks a
//! from-scratch pass over the whole file would produce past the old
//! tail boundary.

use crate::pmap::{MerkleContent, PKey, PMap, ProofError};
use sdr_crypto::merkle::leaf_hash;
use sdr_crypto::{chunk_hash, Hash256, MerkleRangeProof, MerkleTree};
use serde::{Deserialize, Serialize};

/// No cut point is considered before a chunk reaches this many bytes.
pub const MIN_CHUNK: usize = 256;
/// A cut is forced once a chunk reaches this many bytes.
pub const MAX_CHUNK: usize = 4096;
/// Bits of the rolling hash a cut point must zero: expected chunk size
/// is `MIN_CHUNK + 2^CUT_BITS` (~1.25 KiB) between the hard bounds.
pub const CUT_BITS: u32 = 10;

/// The judged hash window: bits 16..16+[`CUT_BITS`], so a cut decision
/// depends on roughly the last 26 bytes — comfortably inside the
/// [`MIN_CHUNK`] restart guard.
const CUT_MASK: u64 = ((1u64 << CUT_BITS) - 1) << 16;

/// Deterministic gear table: one 64-bit mixing constant per byte value,
/// generated at compile time so chunk boundaries are identical on every
/// platform and build.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        i += 1;
    }
    table
};

const fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `data` into content-defined `[start, end)` spans.
///
/// Invariants: spans are contiguous, cover `data` exactly, every span
/// except possibly the last is in `[MIN_CHUNK, MAX_CHUNK]`, and empty
/// input yields no spans.
pub fn chunk_spans(data: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::with_capacity(data.len() / MIN_CHUNK + 1);
    let mut start = 0usize;
    let mut h = 0u64;
    for (i, &b) in data.iter().enumerate() {
        h = (h << 1).wrapping_add(GEAR[b as usize]);
        let len = i + 1 - start;
        if (len >= MIN_CHUNK && h & CUT_MASK == 0) || len == MAX_CHUNK {
            spans.push((start, i + 1));
            start = i + 1;
            h = 0; // Restart: later boundaries depend only on later bytes.
        }
    }
    if start < data.len() {
        spans.push((start, data.len()));
    }
    spans
}

/// Identity of one chunk: the domain-separated digest of its bytes
/// (`sdr_crypto::chunk_hash`).  The chunk store's key, and what file
/// manifests embed per chunk.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChunkId(pub Hash256);

impl ChunkId {
    /// The id of a chunk with these bytes.
    pub fn of(data: &[u8]) -> Self {
        ChunkId(chunk_hash(data))
    }
}

impl PKey for ChunkId {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.0.as_ref());
    }
}

/// One manifest entry: a chunk's id and its length in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The chunk's content digest.
    pub id: ChunkId,
    /// The chunk's length in bytes.
    pub len: u32,
}

/// The ordered chunk list of one file.
///
/// This is the value the file tree ([`crate::fsview::FsView`]) stores
/// per path, so the state digest commits to *chunk digests* rather than
/// raw contents — verifying any single chunk against an inclusion proof
/// of the manifest authenticates that chunk without the rest of the
/// file.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileManifest {
    /// Total file length in bytes (the sum of the entry lengths).
    pub total_len: u64,
    /// The chunks, in file order.
    pub chunks: Vec<ManifestEntry>,
}

impl FileManifest {
    /// Chunks `data` from scratch into its manifest (without touching
    /// any store).  This is also what proof *verifiers* run over claimed
    /// contents: determinism makes the manifest recomputable anywhere.
    pub fn of(data: &[u8]) -> Self {
        let chunks = chunk_spans(data)
            .into_iter()
            .map(|(s, e)| ManifestEntry {
                id: ChunkId::of(&data[s..e]),
                len: (e - s) as u32,
            })
            .collect();
        FileManifest {
            total_len: data.len() as u64,
            chunks,
        }
    }

    /// Indexes `[first, end)` of the chunks overlapping the byte range
    /// `[offset, offset + len)`, clamped to the file.
    pub fn chunk_range(&self, offset: u64, len: u64) -> (usize, usize) {
        let lo = offset.min(self.total_len);
        let hi = offset.saturating_add(len).min(self.total_len);
        let (mut first, mut end) = (self.chunks.len(), self.chunks.len());
        let mut pos = 0u64;
        for (i, entry) in self.chunks.iter().enumerate() {
            let next = pos + u64::from(entry.len);
            if first == self.chunks.len() && lo < next {
                first = i;
            }
            if hi <= next {
                end = i + 1;
                break;
            }
            pos = next;
        }
        if lo >= hi {
            return (0, 0);
        }
        (first, end)
    }

    /// Byte offset where chunk `index` starts.
    pub fn chunk_offset(&self, index: usize) -> u64 {
        self.chunks[..index.min(self.chunks.len())]
            .iter()
            .map(|e| u64::from(e.len))
            .sum()
    }

    /// The Merkle root over the chunk-entry leaves (see [`entry_leaf`]).
    ///
    /// This is what [`FileManifest::content_encode`] commits to, so a
    /// contiguous *slice* of the chunk table can be authenticated with a
    /// [`MerkleRangeProof`] instead of shipping the whole table.
    pub fn chunks_root(&self) -> Hash256 {
        chunks_root_of(&self.chunks)
    }

    /// The slice of this manifest covering the byte range
    /// `[offset, offset + len)`, with its range proof against
    /// [`FileManifest::chunks_root`].  An empty overlap (or empty file)
    /// yields an entry-less slice whose header still binds the file's
    /// length and chunk count.
    pub fn slice(&self, offset: u64, len: u64) -> ManifestSlice {
        let (first, end) = self.chunk_range(offset, len);
        let proof = if first < end {
            let tree = MerkleTree::from_leaves(self.entry_leaves())
                .expect("non-empty chunk range implies non-empty tree");
            tree.prove_range(first, end)
                .expect("chunk_range is in bounds")
        } else {
            MerkleRangeProof {
                first: 0,
                siblings: Vec::new(),
            }
        };
        ManifestSlice {
            total_len: self.total_len,
            chunk_count: self.chunks.len() as u32,
            chunks_root: self.chunks_root(),
            first: first as u32,
            start: self.chunk_offset(first),
            entries: self.chunks[first..end].to_vec(),
            proof,
        }
    }

    fn entry_leaves(&self) -> Vec<Hash256> {
        let mut start = 0u64;
        self.chunks
            .iter()
            .map(|e| {
                let leaf = entry_leaf(start, e);
                start += u64::from(e.len);
                leaf
            })
            .collect()
    }
}

/// Leaf commitment of one chunk-table entry: its starting byte offset,
/// chunk id, and length.  Binding the *offset* into the leaf is what
/// lets a verifier place a slice's bytes in the file without the
/// preceding entries: a slave cannot shift a slice sideways.
fn entry_leaf(start: u64, entry: &ManifestEntry) -> Hash256 {
    let mut buf = Vec::with_capacity(44);
    buf.extend_from_slice(&start.to_be_bytes());
    buf.extend_from_slice(entry.id.0.as_ref());
    buf.extend_from_slice(&entry.len.to_be_bytes());
    leaf_hash(&buf)
}

fn chunks_root_of(chunks: &[ManifestEntry]) -> Hash256 {
    if chunks.is_empty() {
        return leaf_hash(b"sdr/manifest/v2/empty");
    }
    let mut start = 0u64;
    let leaves = chunks
        .iter()
        .map(|e| {
            let leaf = entry_leaf(start, e);
            start += u64::from(e.len);
            leaf
        })
        .collect();
    MerkleTree::from_leaves(leaves)
        .expect("non-empty leaves")
        .root()
}

impl MerkleContent for FileManifest {
    fn content_encode(&self, out: &mut Vec<u8>) {
        // A dedicated domain keeps manifest commitments disjoint from the
        // raw-contents leaves of the pre-chunking store.  v2 commits to
        // the chunk table through its Merkle root (rather than inline),
        // so stream headers can carry an authenticated *slice* of the
        // table: O(slice + log chunks) header bytes instead of O(chunks).
        out.extend_from_slice(b"sdr/manifest/v2");
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_be_bytes());
        out.extend_from_slice(self.chunks_root().as_ref());
    }
}

/// An authenticated contiguous slice of one file's chunk table — what a
/// `ReadFileRange` stream header carries instead of the whole
/// [`FileManifest`].
///
/// The header fields (`total_len`, `chunk_count`, `chunks_root`) rebuild
/// the manifest's canonical encoding for the outer state-digest fold;
/// `proof` ties `entries` (chunks `[first, first + entries.len())`,
/// starting at byte `start`) to `chunks_root`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestSlice {
    /// Total file length in bytes.
    pub total_len: u64,
    /// Total number of chunks in the file.
    pub chunk_count: u32,
    /// Merkle root of the full chunk table.
    pub chunks_root: Hash256,
    /// Absolute index of the first entry in this slice.
    pub first: u32,
    /// Byte offset where the first entry starts.
    pub start: u64,
    /// The chunk entries covering the requested byte range.
    pub entries: Vec<ManifestEntry>,
    /// Range proof of the entries against `chunks_root` (unused when
    /// `entries` is empty — the header fields alone carry the claim).
    pub proof: MerkleRangeProof,
}

impl ManifestSlice {
    /// Checks the slice's internal consistency — the entries (with their
    /// implied byte offsets) fold to `chunks_root` at `[first, ..)` —
    /// and returns the manifest's canonical v2 encoding for the outer
    /// state-digest fold.  An entry-less slice is consistent by itself;
    /// its header claims are bound by the outer fold alone.
    pub fn verified_encoding(&self) -> Result<Vec<u8>, ProofError> {
        if !self.entries.is_empty() {
            let end = (self.first as usize)
                .checked_add(self.entries.len())
                .ok_or(ProofError::ShapeMismatch)?;
            if end > self.chunk_count as usize || self.proof.first != u64::from(self.first) {
                return Err(ProofError::ShapeMismatch);
            }
            let mut start = self.start;
            let leaves: Vec<Hash256> = self
                .entries
                .iter()
                .map(|e| {
                    let leaf = entry_leaf(start, e);
                    start += u64::from(e.len);
                    leaf
                })
                .collect();
            self.proof
                .verify(&self.chunks_root, self.chunk_count as usize, &leaves)
                .map_err(|_| ProofError::RootMismatch)?;
        }
        let mut out = Vec::with_capacity(47 + 32);
        out.extend_from_slice(b"sdr/manifest/v2");
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.chunk_count.to_be_bytes());
        out.extend_from_slice(self.chunks_root.as_ref());
        Ok(out)
    }

    /// The entry for absolute chunk index `index`, when in the slice.
    pub fn entry(&self, index: usize) -> Option<&ManifestEntry> {
        index
            .checked_sub(self.first as usize)
            .and_then(|i| self.entries.get(i))
    }

    /// Byte offset where absolute chunk `index` starts (when in slice).
    pub fn entry_start(&self, index: usize) -> Option<u64> {
        let rel = index.checked_sub(self.first as usize)?;
        if rel > self.entries.len() {
            return None;
        }
        Some(
            self.start
                + self.entries[..rel]
                    .iter()
                    .map(|e| u64::from(e.len))
                    .sum::<u64>(),
        )
    }

    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        // total_len + chunk_count + chunks_root + first + start
        8 + 4 + 32 + 4 + 8 + self.entries.len() * 36 + self.proof.wire_len()
    }
}

/// One stored chunk: its bytes and how many manifest entries reference
/// it across all files.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    /// The chunk's bytes.
    pub data: Vec<u8>,
    /// Live references from file manifests.
    pub refs: u64,
}

impl MerkleContent for ChunkEntry {
    fn content_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.data.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.refs.to_be_bytes());
    }
}

/// Aggregated chunk-store telemetry (see `SystemStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkStats {
    /// Distinct chunks currently stored.
    pub chunks_stored: u64,
    /// Retains that hit an already-stored chunk (cumulative).
    pub chunks_deduped: u64,
    /// Bytes of file content as the manifests see it.
    pub logical_bytes: u64,
    /// Bytes of chunk data actually stored (once per distinct chunk).
    pub physical_bytes: u64,
}

impl ChunkStats {
    /// Fraction of logical bytes saved by dedup: `1 - physical/logical`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.physical_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// The content-addressed, reference-counted chunk store.
///
/// Persistent like everything else in this crate: cloning is O(1) and
/// mutations path-copy, so database snapshots share chunk storage
/// structurally and a failed write's rollback restores the counters for
/// free.  The store is *not* part of the Merkle state digest — the
/// manifests' chunk digests already commit to every stored byte.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChunkStore {
    entries: PMap<ChunkId, ChunkEntry>,
    dedup_hits: u64,
    logical_bytes: u64,
    physical_bytes: u64,
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ChunkStore::default()
    }

    /// Adds one reference to the chunk with these bytes, storing them on
    /// first sight, and returns its id.
    pub fn retain(&mut self, data: &[u8]) -> ChunkId {
        let id = ChunkId::of(data);
        self.logical_bytes += data.len() as u64;
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.refs += 1;
                self.dedup_hits += 1;
            }
            None => {
                self.physical_bytes += data.len() as u64;
                self.entries.insert(
                    id,
                    ChunkEntry {
                        data: data.to_vec(),
                        refs: 1,
                    },
                );
            }
        }
        id
    }

    /// Drops one reference; the chunk's bytes are freed at zero.
    pub fn release(&mut self, id: ChunkId, len: u32) {
        self.logical_bytes = self.logical_bytes.saturating_sub(u64::from(len));
        let gone = match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.refs -= 1;
                entry.refs == 0
            }
            None => false,
        };
        if gone {
            if let Some(entry) = self.entries.remove(&id) {
                self.physical_bytes -= entry.data.len() as u64;
            }
        }
    }

    /// The bytes of a stored chunk.
    pub fn get(&self, id: &ChunkId) -> Option<&[u8]> {
        self.entries.get(id).map(|e| e.data.as_slice())
    }

    /// Live reference count of a chunk (0 when absent).
    pub fn refs(&self, id: &ChunkId) -> u64 {
        self.entries.get(id).map_or(0, |e| e.refs)
    }

    /// Number of distinct chunks stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// Shared-vs-owned node counts of the chunk tree (memory telemetry).
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        self.entries.node_stats()
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> ChunkStats {
        ChunkStats {
            chunks_stored: self.entries.len() as u64,
            chunks_deduped: self.dedup_hits,
            logical_bytes: self.logical_bytes,
            physical_bytes: self.physical_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random content (text-ish, like the dataset's
    /// log files) long enough to cross many cut points.
    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut state = seed;
        while out.len() < len {
            state = splitmix64(state);
            let word = state % 997;
            out.extend_from_slice(format!("entry {word:03} code={:04}\n", state % 9973).as_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn spans_cover_input_exactly_and_respect_bounds() {
        for (len, seed) in [(0usize, 1u64), (1, 2), (255, 3), (256, 4), (5000, 5), (40_000, 6)] {
            let data = sample(len, seed);
            let spans = chunk_spans(&data);
            let mut pos = 0;
            for (i, &(s, e)) in spans.iter().enumerate() {
                assert_eq!(s, pos, "len={len}");
                assert!(e > s);
                let clen = e - s;
                assert!(clen <= MAX_CHUNK, "len={len} chunk {i} too big");
                if i + 1 < spans.len() {
                    assert!(clen >= MIN_CHUNK, "len={len} chunk {i} too small");
                }
                pos = e;
            }
            assert_eq!(pos, data.len(), "len={len}");
            if len == 0 {
                assert!(spans.is_empty());
            }
        }
    }

    #[test]
    fn incompressible_input_forces_max_cuts() {
        // All-identical bytes never zero the hash window, so every chunk
        // is a forced MAX_CHUNK cut.
        let data = vec![0x41u8; MAX_CHUNK * 3 + 100];
        let spans = chunk_spans(&data);
        assert_eq!(spans.len(), 4);
        assert!(spans[..3].iter().all(|&(s, e)| e - s == MAX_CHUNK));
        assert_eq!(spans[3].1 - spans[3].0, 100);
    }

    /// The pinned determinism fixture: identical contents must produce
    /// identical boundaries and digests on every platform and run.  If
    /// this test fails the chunker changed shape — that silently breaks
    /// proof verification between old and new builds, so it must be a
    /// deliberate domain bump, not an accident.
    #[test]
    fn chunking_is_deterministic_pinned() {
        let data = sample(10_000, 42);
        let spans = chunk_spans(&data);
        assert_eq!(spans, chunk_spans(&data));
        let manifest = FileManifest::of(&data);
        assert_eq!(manifest, FileManifest::of(&data));
        assert_eq!(manifest.total_len, 10_000);
        // Pinned shape: boundary list and first/last chunk commitments.
        let cuts: Vec<usize> = spans.iter().map(|&(_, e)| e).collect();
        assert_eq!(cuts, vec![1681, 2297, 6393, 10_000]);
        assert_eq!(
            manifest.chunks[0].id.0.to_hex(),
            "6836699f70714e24222776b432534161f72f5f9bd949199e4c454f498f32a971"
        );
    }

    #[test]
    fn restart_at_cut_makes_appends_local() {
        let base = sample(20_000, 7);
        let extra = sample(900, 8);
        let mut whole = base.clone();
        whole.extend_from_slice(&extra);

        let before = chunk_spans(&base);
        let after = chunk_spans(&whole);
        // Every chunk before the old tail is untouched.
        assert!(before.len() > 2);
        let stable = &before[..before.len() - 1];
        assert_eq!(&after[..stable.len()], stable);
        // And the re-chunked tail equals chunking (tail ‖ extra) alone.
        let tail_start = stable.last().unwrap().1;
        let rechunked = chunk_spans(&whole[tail_start..]);
        let shifted: Vec<(usize, usize)> = after[stable.len()..]
            .iter()
            .map(|&(s, e)| (s - tail_start, e - tail_start))
            .collect();
        assert_eq!(shifted, rechunked);
    }

    #[test]
    fn chunk_range_selects_overlapping_chunks() {
        let data = sample(6_000, 11);
        let m = FileManifest::of(&data);
        assert!(m.chunks.len() >= 3);
        // Whole file.
        assert_eq!(m.chunk_range(0, m.total_len), (0, m.chunks.len()));
        // Empty and out-of-range requests select nothing.
        assert_eq!(m.chunk_range(0, 0), (0, 0));
        assert_eq!(m.chunk_range(m.total_len + 5, 10), (0, 0));
        // A one-byte read in the middle hits exactly one chunk.
        let mid = m.chunk_offset(1);
        let (first, end) = m.chunk_range(mid, 1);
        assert_eq!((first, end), (1, 2));
        // A range straddling a boundary hits both neighbours.
        let (first, end) = m.chunk_range(mid - 1, 2);
        assert_eq!((first, end), (0, 2));
    }

    #[test]
    fn store_refcounts_and_dedups() {
        let mut store = ChunkStore::new();
        let a = store.retain(b"alpha-chunk");
        assert_eq!(store.len(), 1);
        assert_eq!(store.refs(&a), 1);
        assert_eq!(store.stats().chunks_deduped, 0);

        // Same bytes again: dedup, not a second copy.
        let a2 = store.retain(b"alpha-chunk");
        assert_eq!(a, a2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.refs(&a), 2);
        let stats = store.stats();
        assert_eq!(stats.chunks_deduped, 1);
        assert_eq!(stats.logical_bytes, 22);
        assert_eq!(stats.physical_bytes, 11);
        assert!(stats.dedup_ratio() > 0.49 && stats.dedup_ratio() < 0.51);

        store.release(a, 11);
        assert_eq!(store.refs(&a), 1);
        assert_eq!(store.get(&a), Some(b"alpha-chunk".as_ref()));
        store.release(a, 11);
        assert_eq!(store.refs(&a), 0);
        assert!(store.get(&a).is_none());
        let stats = store.stats();
        assert_eq!(stats.logical_bytes, 0);
        assert_eq!(stats.physical_bytes, 0);
    }

    #[test]
    fn store_clone_is_isolated() {
        let mut store = ChunkStore::new();
        store.retain(b"shared");
        let snap = store.clone();
        store.retain(b"later");
        assert_eq!(snap.len(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(snap.stats().physical_bytes, 6);
    }

    #[test]
    fn manifest_slices_verify_and_bind_position() {
        let data = sample(40_000, 13);
        let m = FileManifest::of(&data);
        assert!(m.chunks.len() >= 8);
        let mut whole_enc = Vec::new();
        m.content_encode(&mut whole_enc);

        for (offset, len) in [(0u64, 40_000u64), (0, 1), (10_000, 5_000), (39_999, 1), (12_345, 0), (50_000, 10)] {
            let slice = m.slice(offset, len);
            let enc = slice.verified_encoding().unwrap_or_else(|e| {
                panic!("slice [{offset}, +{len}) rejected: {e}")
            });
            // The slice rebuilds the exact whole-manifest encoding.
            assert_eq!(enc, whole_enc);
            let (first, end) = m.chunk_range(offset, len);
            assert_eq!(slice.first as usize, first);
            assert_eq!(slice.entries.len(), end - first);
            assert_eq!(slice.start, m.chunk_offset(first));
            for i in first..end {
                assert_eq!(slice.entry(i), Some(&m.chunks[i]));
                assert_eq!(slice.entry_start(i), Some(m.chunk_offset(i)));
            }
            // A slice header is O(slice), not O(chunks).
            if end - first <= 2 {
                assert!(slice.wire_len() < m.chunks.len() * 36);
            }
        }
    }

    #[test]
    fn manifest_slice_tampering_rejected() {
        let data = sample(40_000, 17);
        let m = FileManifest::of(&data);
        let slice = m.slice(10_000, 5_000);
        slice.verified_encoding().unwrap();

        // Shifting the slice sideways (lying about the byte offset).
        let mut shifted = slice.clone();
        shifted.start += 1;
        assert!(shifted.verified_encoding().is_err());
        // Lying about the first index.
        let mut moved = slice.clone();
        moved.first += 1;
        moved.proof.first += 1;
        assert!(moved.verified_encoding().is_err());
        // Corrupting an entry's chunk id.
        let mut forged = slice.clone();
        forged.entries[0].id = ChunkId::of(b"evil");
        assert!(forged.verified_encoding().is_err());
        // Dropping an entry.
        let mut dropped = slice.clone();
        dropped.entries.pop();
        assert!(dropped.verified_encoding().is_err());
        // Claiming a different chunk count changes the encoding, so a
        // consistent-but-lying header can never match the outer fold.
        let mut counted = slice.clone();
        counted.chunk_count += 1;
        let enc = counted.verified_encoding();
        if let Ok(enc) = enc {
            let mut real = Vec::new();
            m.content_encode(&mut real);
            assert_ne!(enc, real);
        }
    }

    #[test]
    fn empty_file_manifest_slice() {
        let m = FileManifest::of(b"");
        assert_eq!(m.chunks_root(), leaf_hash(b"sdr/manifest/v2/empty"));
        let slice = m.slice(0, 100);
        assert!(slice.entries.is_empty());
        let mut enc = Vec::new();
        m.content_encode(&mut enc);
        assert_eq!(slice.verified_encoding().unwrap(), enc);
    }

    #[test]
    fn manifest_encoding_binds_chunks_and_length() {
        let a = FileManifest::of(b"some file contents that are short");
        let mut ea = Vec::new();
        a.content_encode(&mut ea);
        let b = FileManifest::of(b"some file contents that are shorT");
        let mut eb = Vec::new();
        b.content_encode(&mut eb);
        assert_ne!(ea, eb);
        // And it is *not* the raw-contents encoding the old store used.
        let mut raw = Vec::new();
        "some file contents that are short"
            .to_string()
            .content_encode(&mut raw);
        assert_ne!(ea, raw);
    }
}
