//! Content-defined chunking and the content-addressed chunk store.
//!
//! Files are split at *content-defined* cut points found by a gear
//! rolling hash, so an edit moves only the chunk boundaries near the
//! touched bytes: appending to a file re-chunks the tail chunk alone,
//! and two files sharing most of their content share most of their
//! chunks.  Chunks are stored once, keyed by their commitment digest
//! ([`ChunkId`], `sdr_crypto::chunk_hash`) and reference-counted across
//! files ([`ChunkStore`]); each file keeps a [`FileManifest`] — the
//! ordered list of chunk digests and lengths — whose canonical encoding
//! is what the file tree's Merkle digest commits to.  A streamed read
//! therefore verifies chunk-by-chunk: manifest entry → chunk digest →
//! chunk bytes, with the manifest itself bound to the master-signed
//! state digest by an O(log n) inclusion proof.
//!
//! Chunking is fully deterministic (a compile-time gear table, no
//! platform-dependent state), and the rolling hash *restarts at every
//! cut*, so the boundaries after a cut depend only on the bytes after
//! it.  That restart is what makes appends O(chunk): re-chunking
//! `tail-chunk ‖ appended-bytes` yields exactly the chunks a
//! from-scratch pass over the whole file would produce past the old
//! tail boundary.

use crate::pmap::{MerkleContent, PKey, PMap};
use sdr_crypto::{chunk_hash, Hash256};
use serde::{Deserialize, Serialize};

/// No cut point is considered before a chunk reaches this many bytes.
pub const MIN_CHUNK: usize = 256;
/// A cut is forced once a chunk reaches this many bytes.
pub const MAX_CHUNK: usize = 4096;
/// Bits of the rolling hash a cut point must zero: expected chunk size
/// is `MIN_CHUNK + 2^CUT_BITS` (~1.25 KiB) between the hard bounds.
pub const CUT_BITS: u32 = 10;

/// The judged hash window: bits 16..16+[`CUT_BITS`], so a cut decision
/// depends on roughly the last 26 bytes — comfortably inside the
/// [`MIN_CHUNK`] restart guard.
const CUT_MASK: u64 = ((1u64 << CUT_BITS) - 1) << 16;

/// Deterministic gear table: one 64-bit mixing constant per byte value,
/// generated at compile time so chunk boundaries are identical on every
/// platform and build.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        i += 1;
    }
    table
};

const fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `data` into content-defined `[start, end)` spans.
///
/// Invariants: spans are contiguous, cover `data` exactly, every span
/// except possibly the last is in `[MIN_CHUNK, MAX_CHUNK]`, and empty
/// input yields no spans.
pub fn chunk_spans(data: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::with_capacity(data.len() / MIN_CHUNK + 1);
    let mut start = 0usize;
    let mut h = 0u64;
    for (i, &b) in data.iter().enumerate() {
        h = (h << 1).wrapping_add(GEAR[b as usize]);
        let len = i + 1 - start;
        if (len >= MIN_CHUNK && h & CUT_MASK == 0) || len == MAX_CHUNK {
            spans.push((start, i + 1));
            start = i + 1;
            h = 0; // Restart: later boundaries depend only on later bytes.
        }
    }
    if start < data.len() {
        spans.push((start, data.len()));
    }
    spans
}

/// Identity of one chunk: the domain-separated digest of its bytes
/// (`sdr_crypto::chunk_hash`).  The chunk store's key, and what file
/// manifests embed per chunk.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChunkId(pub Hash256);

impl ChunkId {
    /// The id of a chunk with these bytes.
    pub fn of(data: &[u8]) -> Self {
        ChunkId(chunk_hash(data))
    }
}

impl PKey for ChunkId {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.0.as_ref());
    }
}

/// One manifest entry: a chunk's id and its length in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The chunk's content digest.
    pub id: ChunkId,
    /// The chunk's length in bytes.
    pub len: u32,
}

/// The ordered chunk list of one file.
///
/// This is the value the file tree ([`crate::fsview::FsView`]) stores
/// per path, so the state digest commits to *chunk digests* rather than
/// raw contents — verifying any single chunk against an inclusion proof
/// of the manifest authenticates that chunk without the rest of the
/// file.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileManifest {
    /// Total file length in bytes (the sum of the entry lengths).
    pub total_len: u64,
    /// The chunks, in file order.
    pub chunks: Vec<ManifestEntry>,
}

impl FileManifest {
    /// Chunks `data` from scratch into its manifest (without touching
    /// any store).  This is also what proof *verifiers* run over claimed
    /// contents: determinism makes the manifest recomputable anywhere.
    pub fn of(data: &[u8]) -> Self {
        let chunks = chunk_spans(data)
            .into_iter()
            .map(|(s, e)| ManifestEntry {
                id: ChunkId::of(&data[s..e]),
                len: (e - s) as u32,
            })
            .collect();
        FileManifest {
            total_len: data.len() as u64,
            chunks,
        }
    }

    /// Indexes `[first, end)` of the chunks overlapping the byte range
    /// `[offset, offset + len)`, clamped to the file.
    pub fn chunk_range(&self, offset: u64, len: u64) -> (usize, usize) {
        let lo = offset.min(self.total_len);
        let hi = offset.saturating_add(len).min(self.total_len);
        let (mut first, mut end) = (self.chunks.len(), self.chunks.len());
        let mut pos = 0u64;
        for (i, entry) in self.chunks.iter().enumerate() {
            let next = pos + u64::from(entry.len);
            if first == self.chunks.len() && lo < next {
                first = i;
            }
            if hi <= next {
                end = i + 1;
                break;
            }
            pos = next;
        }
        if lo >= hi {
            return (0, 0);
        }
        (first, end)
    }

    /// Byte offset where chunk `index` starts.
    pub fn chunk_offset(&self, index: usize) -> u64 {
        self.chunks[..index.min(self.chunks.len())]
            .iter()
            .map(|e| u64::from(e.len))
            .sum()
    }
}

impl MerkleContent for FileManifest {
    fn content_encode(&self, out: &mut Vec<u8>) {
        // A dedicated domain keeps manifest commitments disjoint from the
        // raw-contents leaves of the pre-chunking store: an old
        // single-leaf encoding can never verify as a manifest.
        out.extend_from_slice(b"sdr/manifest/v1");
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_be_bytes());
        for entry in &self.chunks {
            out.extend_from_slice(entry.id.0.as_ref());
            out.extend_from_slice(&entry.len.to_be_bytes());
        }
    }
}

/// One stored chunk: its bytes and how many manifest entries reference
/// it across all files.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    /// The chunk's bytes.
    pub data: Vec<u8>,
    /// Live references from file manifests.
    pub refs: u64,
}

impl MerkleContent for ChunkEntry {
    fn content_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.data.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.refs.to_be_bytes());
    }
}

/// Aggregated chunk-store telemetry (see `SystemStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkStats {
    /// Distinct chunks currently stored.
    pub chunks_stored: u64,
    /// Retains that hit an already-stored chunk (cumulative).
    pub chunks_deduped: u64,
    /// Bytes of file content as the manifests see it.
    pub logical_bytes: u64,
    /// Bytes of chunk data actually stored (once per distinct chunk).
    pub physical_bytes: u64,
}

impl ChunkStats {
    /// Fraction of logical bytes saved by dedup: `1 - physical/logical`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.physical_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// The content-addressed, reference-counted chunk store.
///
/// Persistent like everything else in this crate: cloning is O(1) and
/// mutations path-copy, so database snapshots share chunk storage
/// structurally and a failed write's rollback restores the counters for
/// free.  The store is *not* part of the Merkle state digest — the
/// manifests' chunk digests already commit to every stored byte.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChunkStore {
    entries: PMap<ChunkId, ChunkEntry>,
    dedup_hits: u64,
    logical_bytes: u64,
    physical_bytes: u64,
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ChunkStore::default()
    }

    /// Adds one reference to the chunk with these bytes, storing them on
    /// first sight, and returns its id.
    pub fn retain(&mut self, data: &[u8]) -> ChunkId {
        let id = ChunkId::of(data);
        self.logical_bytes += data.len() as u64;
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.refs += 1;
                self.dedup_hits += 1;
            }
            None => {
                self.physical_bytes += data.len() as u64;
                self.entries.insert(
                    id,
                    ChunkEntry {
                        data: data.to_vec(),
                        refs: 1,
                    },
                );
            }
        }
        id
    }

    /// Drops one reference; the chunk's bytes are freed at zero.
    pub fn release(&mut self, id: ChunkId, len: u32) {
        self.logical_bytes = self.logical_bytes.saturating_sub(u64::from(len));
        let gone = match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.refs -= 1;
                entry.refs == 0
            }
            None => false,
        };
        if gone {
            if let Some(entry) = self.entries.remove(&id) {
                self.physical_bytes -= entry.data.len() as u64;
            }
        }
    }

    /// The bytes of a stored chunk.
    pub fn get(&self, id: &ChunkId) -> Option<&[u8]> {
        self.entries.get(id).map(|e| e.data.as_slice())
    }

    /// Live reference count of a chunk (0 when absent).
    pub fn refs(&self, id: &ChunkId) -> u64 {
        self.entries.get(id).map_or(0, |e| e.refs)
    }

    /// Number of distinct chunks stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// Shared-vs-owned node counts of the chunk tree (memory telemetry).
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        self.entries.node_stats()
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> ChunkStats {
        ChunkStats {
            chunks_stored: self.entries.len() as u64,
            chunks_deduped: self.dedup_hits,
            logical_bytes: self.logical_bytes,
            physical_bytes: self.physical_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random content (text-ish, like the dataset's
    /// log files) long enough to cross many cut points.
    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut state = seed;
        while out.len() < len {
            state = splitmix64(state);
            let word = state % 997;
            out.extend_from_slice(format!("entry {word:03} code={:04}\n", state % 9973).as_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn spans_cover_input_exactly_and_respect_bounds() {
        for (len, seed) in [(0usize, 1u64), (1, 2), (255, 3), (256, 4), (5000, 5), (40_000, 6)] {
            let data = sample(len, seed);
            let spans = chunk_spans(&data);
            let mut pos = 0;
            for (i, &(s, e)) in spans.iter().enumerate() {
                assert_eq!(s, pos, "len={len}");
                assert!(e > s);
                let clen = e - s;
                assert!(clen <= MAX_CHUNK, "len={len} chunk {i} too big");
                if i + 1 < spans.len() {
                    assert!(clen >= MIN_CHUNK, "len={len} chunk {i} too small");
                }
                pos = e;
            }
            assert_eq!(pos, data.len(), "len={len}");
            if len == 0 {
                assert!(spans.is_empty());
            }
        }
    }

    #[test]
    fn incompressible_input_forces_max_cuts() {
        // All-identical bytes never zero the hash window, so every chunk
        // is a forced MAX_CHUNK cut.
        let data = vec![0x41u8; MAX_CHUNK * 3 + 100];
        let spans = chunk_spans(&data);
        assert_eq!(spans.len(), 4);
        assert!(spans[..3].iter().all(|&(s, e)| e - s == MAX_CHUNK));
        assert_eq!(spans[3].1 - spans[3].0, 100);
    }

    /// The pinned determinism fixture: identical contents must produce
    /// identical boundaries and digests on every platform and run.  If
    /// this test fails the chunker changed shape — that silently breaks
    /// proof verification between old and new builds, so it must be a
    /// deliberate domain bump, not an accident.
    #[test]
    fn chunking_is_deterministic_pinned() {
        let data = sample(10_000, 42);
        let spans = chunk_spans(&data);
        assert_eq!(spans, chunk_spans(&data));
        let manifest = FileManifest::of(&data);
        assert_eq!(manifest, FileManifest::of(&data));
        assert_eq!(manifest.total_len, 10_000);
        // Pinned shape: boundary list and first/last chunk commitments.
        let cuts: Vec<usize> = spans.iter().map(|&(_, e)| e).collect();
        assert_eq!(cuts, vec![1681, 2297, 6393, 10_000]);
        assert_eq!(
            manifest.chunks[0].id.0.to_hex(),
            "6836699f70714e24222776b432534161f72f5f9bd949199e4c454f498f32a971"
        );
    }

    #[test]
    fn restart_at_cut_makes_appends_local() {
        let base = sample(20_000, 7);
        let extra = sample(900, 8);
        let mut whole = base.clone();
        whole.extend_from_slice(&extra);

        let before = chunk_spans(&base);
        let after = chunk_spans(&whole);
        // Every chunk before the old tail is untouched.
        assert!(before.len() > 2);
        let stable = &before[..before.len() - 1];
        assert_eq!(&after[..stable.len()], stable);
        // And the re-chunked tail equals chunking (tail ‖ extra) alone.
        let tail_start = stable.last().unwrap().1;
        let rechunked = chunk_spans(&whole[tail_start..]);
        let shifted: Vec<(usize, usize)> = after[stable.len()..]
            .iter()
            .map(|&(s, e)| (s - tail_start, e - tail_start))
            .collect();
        assert_eq!(shifted, rechunked);
    }

    #[test]
    fn chunk_range_selects_overlapping_chunks() {
        let data = sample(6_000, 11);
        let m = FileManifest::of(&data);
        assert!(m.chunks.len() >= 3);
        // Whole file.
        assert_eq!(m.chunk_range(0, m.total_len), (0, m.chunks.len()));
        // Empty and out-of-range requests select nothing.
        assert_eq!(m.chunk_range(0, 0), (0, 0));
        assert_eq!(m.chunk_range(m.total_len + 5, 10), (0, 0));
        // A one-byte read in the middle hits exactly one chunk.
        let mid = m.chunk_offset(1);
        let (first, end) = m.chunk_range(mid, 1);
        assert_eq!((first, end), (1, 2));
        // A range straddling a boundary hits both neighbours.
        let (first, end) = m.chunk_range(mid - 1, 2);
        assert_eq!((first, end), (0, 2));
    }

    #[test]
    fn store_refcounts_and_dedups() {
        let mut store = ChunkStore::new();
        let a = store.retain(b"alpha-chunk");
        assert_eq!(store.len(), 1);
        assert_eq!(store.refs(&a), 1);
        assert_eq!(store.stats().chunks_deduped, 0);

        // Same bytes again: dedup, not a second copy.
        let a2 = store.retain(b"alpha-chunk");
        assert_eq!(a, a2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.refs(&a), 2);
        let stats = store.stats();
        assert_eq!(stats.chunks_deduped, 1);
        assert_eq!(stats.logical_bytes, 22);
        assert_eq!(stats.physical_bytes, 11);
        assert!(stats.dedup_ratio() > 0.49 && stats.dedup_ratio() < 0.51);

        store.release(a, 11);
        assert_eq!(store.refs(&a), 1);
        assert_eq!(store.get(&a), Some(b"alpha-chunk".as_ref()));
        store.release(a, 11);
        assert_eq!(store.refs(&a), 0);
        assert!(store.get(&a).is_none());
        let stats = store.stats();
        assert_eq!(stats.logical_bytes, 0);
        assert_eq!(stats.physical_bytes, 0);
    }

    #[test]
    fn store_clone_is_isolated() {
        let mut store = ChunkStore::new();
        store.retain(b"shared");
        let snap = store.clone();
        store.retain(b"later");
        assert_eq!(snap.len(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(snap.stats().physical_bytes, 6);
    }

    #[test]
    fn manifest_encoding_binds_chunks_and_length() {
        let a = FileManifest::of(b"some file contents that are short");
        let mut ea = Vec::new();
        a.content_encode(&mut ea);
        let b = FileManifest::of(b"some file contents that are shorT");
        let mut eb = Vec::new();
        b.content_encode(&mut eb);
        assert_ne!(ea, eb);
        // And it is *not* the raw-contents encoding the old store used.
        let mut raw = Vec::new();
        "some file contents that are short"
            .to_string()
            .content_encode(&mut raw);
        assert_ne!(ea, raw);
    }
}
