//! The content container: named tables, a file system, and the version.

use crate::error::StoreError;
use crate::fsview::FsView;
use crate::pmap::PMap;
use crate::table::Table;
use crate::update::UpdateOp;
use sdr_crypto::{Digest, Hash256, Sha256};
use serde::{Deserialize, Serialize};

/// The replicated data content: tables plus a file-system view, stamped
/// with the paper's `content_version` counter.
///
/// The version is bumped *only* by [`Database::apply_write`] — one
/// committed write request per increment, exactly as in Section 3.1 ("each
/// master executes the request and increments … `content_version`").
///
/// # Persistence and cost model
///
/// All content lives in persistent ([`PMap`]) structures, so:
///
/// * `clone()` is **O(1)** — a handful of reference-count bumps.  Version
///   snapshots ([`crate::snapshot::SnapshotStore`]) and the pre-write
///   rollback handle are therefore free, no matter the dataset size.
/// * Writes copy only the touched paths (O(log n) nodes per touched row
///   or file); everything else stays shared with earlier snapshots.
/// * [`Database::state_digest`] folds cached Merkle subtree hashes, so
///   after a point write it re-hashes O(log n) nodes instead of
///   re-encoding the whole state.
///
/// # Examples
///
/// ```
/// use sdr_store::{execute, Database, Document, Query, UpdateOp};
///
/// let mut db = Database::new();
/// db.apply_write(&[
///     UpdateOp::CreateTable { table: "t".into(), indexes: vec![] },
///     UpdateOp::Insert {
///         table: "t".into(),
///         key: 1,
///         doc: Document::new().with("name", "anvil"),
///     },
/// ])
/// .unwrap();
/// assert_eq!(db.version(), 1);
///
/// let (result, cost) = execute(&db, &Query::GetRow { table: "t".into(), key: 1 }).unwrap();
/// assert_eq!(result.row_count(), 1);
/// assert_eq!(cost.index_probes, 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Database {
    tables: PMap<String, Table>,
    fs: FsView,
    version: u64,
}

impl Database {
    /// Creates an empty database at version 0.
    pub fn new() -> Self {
        Database::default()
    }

    /// The current `content_version`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Creates an empty table; fails when the name is taken.
    pub fn create_table(&mut self, name: &str) -> Result<(), StoreError> {
        if self.tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(name));
        Ok(())
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Write access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|(k, _)| k.as_str())
    }

    /// Read access to the file-system view.
    pub fn fs(&self) -> &FsView {
        &self.fs
    }

    /// Write access to the file-system view.
    pub fn fs_mut(&mut self) -> &mut FsView {
        &mut self.fs
    }

    /// Applies a committed write request (a batch of operations) and bumps
    /// `content_version` by one.
    ///
    /// The batch is transactional in the failure-free sense the protocol
    /// needs: operations apply in order, and the first error aborts with
    /// the version untouched and prior ops of the batch rolled back by
    /// restoring the pre-write handle (an O(1) structural-sharing clone,
    /// not a deep copy).
    pub fn apply_write(&mut self, ops: &[UpdateOp]) -> Result<u64, StoreError> {
        let backup = self.clone();
        for op in ops {
            if let Err(e) = op.apply(self) {
                *self = backup;
                return Err(e);
            }
        }
        self.version += 1;
        Ok(self.version)
    }

    /// Digest of the full state *including* the version counter.
    ///
    /// Two replicas agree on content iff their digests match; tests and the
    /// audit mechanism compare these.  The digest folds the cached Merkle
    /// roots of the table set and the file tree, so it is O(log n)
    /// amortized after a point write (and O(1) when nothing changed); the
    /// underlying trees are history-independent, so equal content always
    /// produces equal digests regardless of the op sequence that built it.
    ///
    /// Because the folded roots are *search-tree* digests, the same value
    /// also anchors authenticated point reads: see [`crate::proof`].
    pub fn state_digest(&self) -> Hash256 {
        digest_from_parts(
            self.version,
            self.tables.len() as u32,
            &self.tables.root_hash(),
            &self.fs.files_digest(),
        )
    }

    /// Root digest of the table map (proof plumbing).
    pub fn tables_root(&self) -> Hash256 {
        self.tables.root_hash()
    }

    /// Number of tables (part of the state-digest preimage).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Inclusion proof for a table's entry in the table map (proof
    /// plumbing; see [`crate::proof::RowProof`]).
    pub fn prove_table_entry(&self, table: &str) -> crate::pmap::InclusionProof<String> {
        self.tables.prove(&table.to_string())
    }

    /// Shared-vs-owned node counts across every persistent structure in
    /// this handle (tables, their rows and indexes, and the file tree) —
    /// O(n) memory telemetry, not a hot path.  Sharing is transitive: a
    /// table whose *container node* is shared counts its rows shared
    /// too, since the other handle reaches them through that node.
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        let mut out = crate::pmap::NodeStats::default();
        self.tables.visit_nodes(false, &mut |table: &Table, shared| {
            if shared {
                out.shared += 1;
            } else {
                out.owned += 1;
            }
            out.merge(table.node_stats_inherited(shared));
        });
        out.merge(self.fs.node_stats());
        out
    }

    /// Approximate total content size in bytes.
    pub fn size(&self) -> usize {
        self.tables.iter().map(|(_, t)| t.size()).sum::<usize>() + self.fs.total_bytes()
    }
}

/// Rebuilds the state digest from its authenticated parts.
///
/// Shared by [`Database::state_digest`] and proof verification
/// ([`crate::proof`]): a verifier that has folded a proof into a
/// `tables_root`/`files_root` pair recomputes the digest with exactly the
/// preimage layout the producer used.
pub fn digest_from_parts(
    version: u64,
    table_count: u32,
    tables_root: &Hash256,
    files_root: &Hash256,
) -> Hash256 {
    // v4: the files root commits to per-file *chunk manifests* (see
    // `crate::chunk`), not raw contents.  The domain bump makes digests
    // from the pre-chunking layout verifiably distinct — an old
    // single-leaf state can never be passed off as a chunked one.
    let mut buf = Vec::with_capacity(96);
    buf.extend_from_slice(b"sdr/state/v4");
    buf.extend_from_slice(&version.to_be_bytes());
    buf.extend_from_slice(&table_count.to_be_bytes());
    buf.extend_from_slice(tables_root.as_ref());
    buf.extend_from_slice(files_root.as_ref());
    Sha256::digest(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn insert_op(key: u64, v: i64) -> UpdateOp {
        UpdateOp::Insert {
            table: "t".into(),
            key,
            doc: Document::new().with("v", v),
        }
    }

    #[test]
    fn version_bumps_only_on_apply_write() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        assert_eq!(db.version(), 1);
        db.apply_write(&[insert_op(1, 10), insert_op(2, 20)]).unwrap();
        assert_eq!(db.version(), 2);
    }

    #[test]
    fn failed_batch_rolls_back() {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        db.apply_write(&[insert_op(1, 10)]).unwrap();
        let digest_before = db.state_digest();

        // Second op fails (duplicate key): first op must roll back too.
        let err = db.apply_write(&[insert_op(5, 50), insert_op(1, 99)]);
        assert_eq!(err, Err(StoreError::KeyExists(1)));
        assert_eq!(db.version(), 2);
        assert_eq!(db.state_digest(), digest_before);
        assert!(db.table("t").unwrap().get(5).is_none());
    }

    #[test]
    fn digest_tracks_content_and_version() {
        let mut a = Database::new();
        let mut b = Database::new();
        let setup = UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        };
        a.apply_write(std::slice::from_ref(&setup)).unwrap();
        b.apply_write(std::slice::from_ref(&setup)).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());

        a.apply_write(&[insert_op(1, 1)]).unwrap();
        assert_ne!(a.state_digest(), b.state_digest());

        b.apply_write(&[insert_op(1, 1)]).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table("x").unwrap();
        assert_eq!(
            db.create_table("x"),
            Err(StoreError::TableExists("x".into()))
        );
    }

    #[test]
    fn table_names_listed() {
        let mut db = Database::new();
        db.create_table("b").unwrap();
        db.create_table("a").unwrap();
        let names: Vec<&str> = db.table_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn clone_is_a_cheap_isolated_snapshot() {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        db.apply_write(&[insert_op(1, 10)]).unwrap();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/a".into(),
            contents: "one".into(),
        }])
        .unwrap();

        let snap = db.clone();
        let snap_digest = snap.state_digest();

        db.apply_write(&[insert_op(2, 20)]).unwrap();
        db.apply_write(&[UpdateOp::AppendFile {
            path: "/a".into(),
            contents: "two".into(),
        }])
        .unwrap();

        // The snapshot still sees the captured state, digest included.
        assert_eq!(snap.version(), 3);
        assert!(snap.table("t").unwrap().get(2).is_none());
        assert_eq!(snap.fs().read("/a").as_deref(), Some("one"));
        assert_eq!(snap.state_digest(), snap_digest);
        assert_ne!(db.state_digest(), snap_digest);
    }

    #[test]
    fn state_domain_v4_rejects_v3_layout_digests() {
        // A digest built with the pre-chunking domain tag over the same
        // roots must not match: old single-leaf states cannot be passed
        // off under the chunked domain (or vice versa).
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/a".into(),
            contents: "one".into(),
        }])
        .unwrap();
        let mut buf = Vec::with_capacity(96);
        buf.extend_from_slice(b"sdr/state/v3");
        buf.extend_from_slice(&db.version().to_be_bytes());
        buf.extend_from_slice(&(db.table_count() as u32).to_be_bytes());
        buf.extend_from_slice(db.tables_root().as_ref());
        buf.extend_from_slice(db.fs().files_digest().as_ref());
        let v3_digest = Sha256::digest(&buf);
        assert_ne!(db.state_digest(), v3_digest);
    }

    #[test]
    fn digest_is_history_independent() {
        // Equal content reached via different op orders (including a
        // rollback on one side) digests identically.
        let mut a = Database::new();
        a.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            insert_op(1, 1),
            insert_op(2, 2),
        ])
        .unwrap();

        let mut b = Database::new();
        b.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            insert_op(2, 2),
            insert_op(3, 3),
            UpdateOp::Delete {
                table: "t".into(),
                key: 3,
            },
            insert_op(1, 1),
        ])
        .unwrap();
        // A failed batch must leave no trace in the digest either.
        assert!(b.apply_write(&[insert_op(9, 9), insert_op(1, 0)]).is_err());
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
