//! The content container: named tables, a file system, and the version.

use crate::error::StoreError;
use crate::fsview::FsView;
use crate::table::Table;
use crate::update::UpdateOp;
use sdr_crypto::{Digest, Hash256, Sha256};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The replicated data content: tables plus a file-system view, stamped
/// with the paper's `content_version` counter.
///
/// The version is bumped *only* by [`Database::apply_write`] — one
/// committed write request per increment, exactly as in Section 3.1 ("each
/// master executes the request and increments … `content_version`").
///
/// # Examples
///
/// ```
/// use sdr_store::{execute, Database, Document, Query, UpdateOp};
///
/// let mut db = Database::new();
/// db.apply_write(&[
///     UpdateOp::CreateTable { table: "t".into(), indexes: vec![] },
///     UpdateOp::Insert {
///         table: "t".into(),
///         key: 1,
///         doc: Document::new().with("name", "anvil"),
///     },
/// ])
/// .unwrap();
/// assert_eq!(db.version(), 1);
///
/// let (result, cost) = execute(&db, &Query::GetRow { table: "t".into(), key: 1 }).unwrap();
/// assert_eq!(result.row_count(), 1);
/// assert_eq!(cost.index_probes, 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    fs: FsView,
    version: u64,
}

impl Database {
    /// Creates an empty database at version 0.
    pub fn new() -> Self {
        Database::default()
    }

    /// The current `content_version`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Creates an empty table; fails when the name is taken.
    pub fn create_table(&mut self, name: &str) -> Result<(), StoreError> {
        if self.tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(name));
        Ok(())
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Write access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Read access to the file-system view.
    pub fn fs(&self) -> &FsView {
        &self.fs
    }

    /// Write access to the file-system view.
    pub fn fs_mut(&mut self) -> &mut FsView {
        &mut self.fs
    }

    /// Applies a committed write request (a batch of operations) and bumps
    /// `content_version` by one.
    ///
    /// The batch is transactional in the failure-free sense the protocol
    /// needs: operations apply in order, and the first error aborts with
    /// the version untouched and prior ops of the batch rolled back (via
    /// snapshot restore).
    pub fn apply_write(&mut self, ops: &[UpdateOp]) -> Result<u64, StoreError> {
        let backup = self.clone();
        for op in ops {
            if let Err(e) = op.apply(self) {
                *self = backup;
                return Err(e);
            }
        }
        self.version += 1;
        Ok(self.version)
    }

    /// Digest of the full state *including* the version counter.
    ///
    /// Two replicas agree on content iff their digests match; tests and the
    /// audit mechanism compare these.
    pub fn state_digest(&self) -> Hash256 {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(b"sdr/state/v1");
        buf.extend_from_slice(&self.version.to_be_bytes());
        buf.extend_from_slice(&(self.tables.len() as u32).to_be_bytes());
        for t in self.tables.values() {
            t.encode_into(&mut buf);
        }
        self.fs.encode_into(&mut buf);
        Sha256::digest(&buf)
    }

    /// Approximate total content size in bytes.
    pub fn size(&self) -> usize {
        self.tables.values().map(Table::size).sum::<usize>() + self.fs.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn insert_op(key: u64, v: i64) -> UpdateOp {
        UpdateOp::Insert {
            table: "t".into(),
            key,
            doc: Document::new().with("v", v),
        }
    }

    #[test]
    fn version_bumps_only_on_apply_write() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        assert_eq!(db.version(), 1);
        db.apply_write(&[insert_op(1, 10), insert_op(2, 20)]).unwrap();
        assert_eq!(db.version(), 2);
    }

    #[test]
    fn failed_batch_rolls_back() {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        db.apply_write(&[insert_op(1, 10)]).unwrap();
        let digest_before = db.state_digest();

        // Second op fails (duplicate key): first op must roll back too.
        let err = db.apply_write(&[insert_op(5, 50), insert_op(1, 99)]);
        assert_eq!(err, Err(StoreError::KeyExists(1)));
        assert_eq!(db.version(), 2);
        assert_eq!(db.state_digest(), digest_before);
        assert!(db.table("t").unwrap().get(5).is_none());
    }

    #[test]
    fn digest_tracks_content_and_version() {
        let mut a = Database::new();
        let mut b = Database::new();
        let setup = UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        };
        a.apply_write(std::slice::from_ref(&setup)).unwrap();
        b.apply_write(std::slice::from_ref(&setup)).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());

        a.apply_write(&[insert_op(1, 1)]).unwrap();
        assert_ne!(a.state_digest(), b.state_digest());

        b.apply_write(&[insert_op(1, 1)]).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table("x").unwrap();
        assert_eq!(
            db.create_table("x"),
            Err(StoreError::TableExists("x".into()))
        );
    }

    #[test]
    fn table_names_listed() {
        let mut db = Database::new();
        db.create_table("b").unwrap();
        db.create_table("a").unwrap();
        let names: Vec<&str> = db.table_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
