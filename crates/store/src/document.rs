//! Documents: ordered field → value records.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A record: an ordered map of field names to typed values.
///
/// `BTreeMap` keeps field iteration (and therefore the canonical encoding)
/// deterministic regardless of insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Builder-style field insertion.
    pub fn with(mut self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(field.into(), value.into());
        self
    }

    /// Sets a field, returning the previous value if any.
    pub fn set(&mut self, field: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.fields.insert(field.into(), value.into())
    }

    /// Reads a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Removes a field.
    pub fn remove(&mut self, field: &str) -> Option<Value> {
        self.fields.remove(field)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keeps only the named fields (projection); unknown names are ignored.
    pub fn project(&self, fields: &[String]) -> Document {
        let mut out = Document::new();
        for f in fields {
            if let Some(v) = self.fields.get(f) {
                out.fields.insert(f.clone(), v.clone());
            }
        }
        out
    }

    /// Appends the canonical encoding to `out` (field-name ordered).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.fields.len() as u32).to_be_bytes());
        for (k, v) in &self.fields {
            out.extend_from_slice(&(k.len() as u32).to_be_bytes());
            out.extend_from_slice(k.as_bytes());
            v.encode_into(out);
        }
    }

    /// Approximate size in bytes (for cost accounting).
    pub fn size(&self) -> usize {
        self.fields
            .iter()
            .map(|(k, v)| 8 + k.len() + v.size())
            .sum::<usize>()
            + 4
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Document {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new()
            .with("name", "widget")
            .with("price", 19i64)
            .with("rating", 4.5)
    }

    #[test]
    fn set_get_remove() {
        let mut d = doc();
        assert_eq!(d.get("name"), Some(&Value::Str("widget".into())));
        assert_eq!(d.set("price", 21i64), Some(Value::Int(19)));
        assert_eq!(d.remove("rating"), Some(Value::Float(4.5)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn encoding_is_insertion_order_independent() {
        let a = Document::new().with("x", 1i64).with("y", 2i64);
        let b = Document::new().with("y", 2i64).with("x", 1i64);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_eq!(ea, eb);
        assert_eq!(a, b);
    }

    #[test]
    fn encoding_reflects_content() {
        let a = Document::new().with("x", 1i64);
        let b = Document::new().with("x", 2i64);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_ne!(ea, eb);
    }

    #[test]
    fn projection_keeps_only_named() {
        let d = doc();
        let p = d.project(&["name".to_string(), "missing".to_string()]);
        assert_eq!(p.len(), 1);
        assert!(p.get("name").is_some());
    }

    #[test]
    fn display_renders_fields() {
        let s = doc().to_string();
        assert!(s.contains("name") && s.contains("price"));
    }

    #[test]
    fn size_grows_with_fields() {
        let small = Document::new().with("a", 1i64);
        let big = small.clone().with("blob", vec![0u8; 100]);
        assert!(big.size() > small.size() + 100);
    }
}
