//! Error type for store operations.

use std::fmt;

/// Errors produced by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced row does not exist.
    NoSuchKey(u64),
    /// Referenced file does not exist.
    NoSuchFile(String),
    /// A table with that name already exists.
    TableExists(String),
    /// A row with that key already exists.
    KeyExists(u64),
    /// Query referenced a field in an invalid way (e.g. aggregating a
    /// non-numeric field).
    BadQuery(&'static str),
    /// Update operation was structurally invalid.
    BadUpdate(&'static str),
    /// An invalid pattern was supplied to grep.
    BadPattern(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            StoreError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            StoreError::TableExists(t) => write!(f, "table exists: {t}"),
            StoreError::KeyExists(k) => write!(f, "key exists: {k}"),
            StoreError::BadQuery(why) => write!(f, "bad query: {why}"),
            StoreError::BadUpdate(why) => write!(f, "bad update: {why}"),
            StoreError::BadPattern(why) => write!(f, "bad pattern: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        assert!(StoreError::NoSuchTable("users".into())
            .to_string()
            .contains("users"));
        assert!(StoreError::NoSuchKey(42).to_string().contains("42"));
    }
}
