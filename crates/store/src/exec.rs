//! The query executor, with per-query cost accounting.
//!
//! Every execution returns a [`QueryCost`] describing the work performed
//! (rows scanned, index probes, bytes processed).  The replication layer
//! converts this into virtual CPU time, which is how "a computationally
//! very intensive task … applying an aggregation function on the entire
//! data content" (Section 3.2) becomes visible in the experiments.

use crate::database::Database;
use crate::document::Document;
use crate::error::StoreError;
use crate::pattern::Pattern;
use crate::predicate::Predicate;
use crate::query::{Aggregate, Query, QueryResult};
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Work performed while executing one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCost {
    /// Rows examined by scanning.
    pub rows_scanned: u64,
    /// Rows fetched through a secondary index.
    pub index_probes: u64,
    /// Bytes of file content processed (grep / read).
    pub bytes_processed: u64,
    /// Rows/items in the produced result.
    pub rows_returned: u64,
}

impl QueryCost {
    /// Sums two costs (used when a checker re-executes batches).
    pub fn merge(self, other: QueryCost) -> QueryCost {
        QueryCost {
            rows_scanned: self.rows_scanned + other.rows_scanned,
            index_probes: self.index_probes + other.index_probes,
            bytes_processed: self.bytes_processed + other.bytes_processed,
            rows_returned: self.rows_returned + other.rows_returned,
        }
    }
}

/// Executes `query` against `db`, returning the result and its cost.
pub fn execute(db: &Database, query: &Query) -> Result<(QueryResult, QueryCost), StoreError> {
    let mut cost = QueryCost::default();
    let result = match query {
        Query::GetRow { table, key } => {
            let t = db.table(table)?;
            cost.index_probes += 1;
            let rows = t
                .get(*key)
                .map(|d| vec![(*key, d.clone())])
                .unwrap_or_default();
            QueryResult::Rows(rows)
        }
        Query::Range {
            table,
            low,
            high,
            limit,
        } => {
            let t = db.table(table)?;
            let cap = limit.map(|l| l as usize).unwrap_or(usize::MAX);
            let mut rows = Vec::new();
            for (k, d) in t.range(*low, *high) {
                cost.rows_scanned += 1;
                if rows.len() < cap {
                    rows.push((k, d.clone()));
                }
            }
            QueryResult::Rows(rows)
        }
        Query::Filter {
            table,
            predicate,
            projection,
            limit,
        } => {
            let t = db.table(table)?;
            let cap = limit.map(|l| l as usize).unwrap_or(usize::MAX);
            let rows = filter_rows(t, predicate, &mut cost);
            let mut out = Vec::new();
            for (k, d) in rows {
                if out.len() >= cap {
                    break;
                }
                let doc = match projection {
                    Some(fields) => d.project(fields),
                    None => d.clone(),
                };
                out.push((k, doc));
            }
            QueryResult::Rows(out)
        }
        Query::Aggregate {
            table,
            predicate,
            agg,
            group_by,
        } => {
            let t = db.table(table)?;
            let rows = filter_rows(t, predicate, &mut cost);
            match group_by {
                None => QueryResult::Scalar(aggregate(rows.iter().map(|(_, d)| *d), agg)?),
                Some(field) => {
                    let mut groups: BTreeMap<Value, Vec<&Document>> = BTreeMap::new();
                    for (_, d) in &rows {
                        let key = d.get(field).cloned().unwrap_or(Value::Null);
                        groups.entry(key).or_default().push(d);
                    }
                    let mut out = Vec::with_capacity(groups.len());
                    for (key, docs) in groups {
                        out.push((key, aggregate(docs.into_iter(), agg)?));
                    }
                    QueryResult::Groups(out)
                }
            }
        }
        Query::Join {
            left,
            right,
            left_field,
            right_field,
            predicate,
            limit,
        } => {
            let lt = db.table(left)?;
            let rt = db.table(right)?;
            let cap = limit.map(|l| l as usize).unwrap_or(usize::MAX);

            // Build phase over the right table.
            let mut build: BTreeMap<Value, Vec<(u64, &Document)>> = BTreeMap::new();
            for (k, d) in rt.iter() {
                cost.rows_scanned += 1;
                if let Some(v) = d.get(right_field) {
                    build.entry(v.clone()).or_default().push((k, d));
                }
            }
            // Probe phase over the left table.
            let mut out = Vec::new();
            'probe: for (lk, ld) in lt.iter() {
                cost.rows_scanned += 1;
                let Some(v) = ld.get(left_field) else { continue };
                let Some(matches) = build.get(v) else { continue };
                for (rk, rd) in matches {
                    let mut merged = ld.clone();
                    for (f, val) in rd.iter() {
                        merged.set(format!("r.{f}"), val.clone());
                    }
                    merged.set("r.#key", Value::Int(*rk as i64));
                    if predicate.eval(&merged) {
                        out.push((lk, merged));
                        if out.len() >= cap {
                            break 'probe;
                        }
                    }
                }
            }
            QueryResult::Rows(out)
        }
        Query::ReadFile { path } => {
            let contents = db.fs().read(path);
            cost.bytes_processed += contents.as_ref().map_or(0, |c| c.len() as u64);
            QueryResult::Text(contents)
        }
        Query::Grep { pattern, prefix } => {
            let pat = Pattern::compile(pattern)?;
            let (matches, scanned) = db.fs().grep(&pat, prefix);
            cost.bytes_processed += scanned as u64;
            QueryResult::Matches(matches)
        }
        Query::ListFiles { prefix } => {
            let paths = db.fs().list(prefix);
            cost.rows_scanned += db.fs().file_count() as u64;
            QueryResult::Paths(paths)
        }
        Query::ReadFileRange { path, offset, len } => {
            let contents = db.fs().read_range(path, *offset, *len);
            cost.bytes_processed += contents.as_ref().map_or(0, |c| c.len() as u64);
            QueryResult::Text(contents)
        }
        Query::ScanRange { table, start, end } => {
            let t = db.table(table)?;
            let mut rows = Vec::new();
            for (k, d) in t.scan(*start, *end) {
                cost.rows_scanned += 1;
                rows.push((k, d.clone()));
            }
            QueryResult::Rows(rows)
        }
    };
    cost.rows_returned = result.row_count() as u64;
    Ok((result, cost))
}

/// Evaluates `predicate` over `table`, using a secondary index when the
/// predicate pins an indexed field with equality.
fn filter_rows<'t>(
    table: &'t Table,
    predicate: &Predicate,
    cost: &mut QueryCost,
) -> Vec<(u64, &'t Document)> {
    // Try each indexed field for an equality hint.
    let indexed: Vec<String> = table.indexed_fields().map(str::to_string).collect();
    for field in &indexed {
        if let Some(value) = predicate.index_hint(field) {
            if let Some(keys) = table.index_keys(field, value) {
                let mut out = Vec::with_capacity(keys.len());
                for k in keys {
                    cost.index_probes += 1;
                    if let Some(d) = table.get(k) {
                        if predicate.eval(d) {
                            out.push((k, d));
                        }
                    }
                }
                return out;
            }
        }
    }
    // Fall back to a full scan.
    let mut out = Vec::new();
    for (k, d) in table.iter() {
        cost.rows_scanned += 1;
        if predicate.eval(d) {
            out.push((k, d));
        }
    }
    out
}

/// Applies an aggregate over a row iterator.
fn aggregate<'a, I: Iterator<Item = &'a Document>>(
    rows: I,
    agg: &Aggregate,
) -> Result<Value, StoreError> {
    match agg {
        Aggregate::Count => Ok(Value::Int(rows.count() as i64)),
        Aggregate::Sum(field) => {
            let mut sum = 0.0;
            let mut any_float = false;
            let mut isum: i64 = 0;
            for d in rows {
                match d.get(field) {
                    Some(Value::Int(i)) => {
                        isum = isum.wrapping_add(*i);
                        sum += *i as f64;
                    }
                    Some(Value::Float(f)) => {
                        any_float = true;
                        sum += f;
                    }
                    Some(Value::Null) | None => {}
                    Some(_) => return Err(StoreError::BadQuery("sum over non-numeric field")),
                }
            }
            Ok(if any_float {
                Value::Float(sum)
            } else {
                Value::Int(isum)
            })
        }
        Aggregate::Min(field) => Ok(rows
            .filter_map(|d| d.get(field))
            .min()
            .cloned()
            .unwrap_or(Value::Null)),
        Aggregate::Max(field) => Ok(rows
            .filter_map(|d| d.get(field))
            .max()
            .cloned()
            .unwrap_or(Value::Null)),
        Aggregate::Avg(field) => {
            let mut sum = 0.0;
            let mut n = 0u64;
            for d in rows {
                match d.get(field).and_then(Value::as_f64) {
                    Some(v) => {
                        sum += v;
                        n += 1;
                    }
                    None => match d.get(field) {
                        None | Some(Value::Null) => {}
                        Some(_) => {
                            return Err(StoreError::BadQuery("avg over non-numeric field"))
                        }
                    },
                }
            }
            Ok(if n == 0 {
                Value::Null
            } else {
                Value::Float(sum / n as f64)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::update::UpdateOp;

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "products".into(),
            indexes: vec!["category".into()],
        }])
        .unwrap();
        let items: [(&str, i64, &str); 5] = [
            ("anvil", 100, "tools"),
            ("rope", 10, "tools"),
            ("tnt", 50, "explosives"),
            ("rocket", 500, "explosives"),
            ("glue", 5, "adhesives"),
        ];
        let ops: Vec<UpdateOp> = items
            .iter()
            .enumerate()
            .map(|(i, (n, p, c))| UpdateOp::Insert {
                table: "products".into(),
                key: i as u64 + 1,
                doc: Document::new()
                    .with("name", *n)
                    .with("price", *p)
                    .with("category", *c),
            })
            .collect();
        db.apply_write(&ops).unwrap();
        db.apply_write(&[
            UpdateOp::WriteFile {
                path: "/docs/readme".into(),
                contents: "acme products\nquality guaranteed\n".into(),
            },
            UpdateOp::WriteFile {
                path: "/docs/catalog".into(),
                contents: "anvil: best in class\nrocket: fast delivery\n".into(),
            },
        ])
        .unwrap();
        db
    }

    #[test]
    fn get_row() {
        let db = db();
        let (r, c) = execute(
            &db,
            &Query::GetRow {
                table: "products".into(),
                key: 1,
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(c.index_probes, 1);
        assert_eq!(c.rows_returned, 1);
    }

    #[test]
    fn get_missing_row_is_empty_not_error() {
        let db = db();
        let (r, _) = execute(
            &db,
            &Query::GetRow {
                table: "products".into(),
                key: 999,
            },
        )
        .unwrap();
        assert_eq!(r, QueryResult::Rows(vec![]));
    }

    #[test]
    fn range_with_limit() {
        let db = db();
        let (r, c) = execute(
            &db,
            &Query::Range {
                table: "products".into(),
                low: 1,
                high: 5,
                limit: Some(2),
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(c.rows_scanned, 5);
    }

    #[test]
    fn scan_range_is_half_open_and_unlimited() {
        let db = db();
        let (r, c) = execute(
            &db,
            &Query::ScanRange {
                table: "products".into(),
                start: 2,
                end: 5,
            },
        )
        .unwrap();
        let QueryResult::Rows(rows) = &r else {
            panic!("scan returns rows")
        };
        let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 4]);
        assert_eq!(c.rows_scanned, 3);
        // Empty and out-of-range scans return no rows.
        let (r, _) = execute(
            &db,
            &Query::ScanRange {
                table: "products".into(),
                start: 5,
                end: 5,
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 0);
    }

    #[test]
    fn filter_uses_index_when_available() {
        let db = db();
        let (r, c) = execute(
            &db,
            &Query::Filter {
                table: "products".into(),
                predicate: Predicate::eq("category", "tools"),
                projection: None,
                limit: None,
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(c.rows_scanned, 0, "should not scan");
        assert_eq!(c.index_probes, 2);
    }

    #[test]
    fn filter_scans_without_index() {
        let db = db();
        let (r, c) = execute(
            &db,
            &Query::Filter {
                table: "products".into(),
                predicate: Predicate::cmp("price", CmpOp::Ge, 100i64),
                projection: None,
                limit: None,
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(c.rows_scanned, 5);
        assert_eq!(c.index_probes, 0);
    }

    #[test]
    fn filter_with_projection() {
        let db = db();
        let (r, _) = execute(
            &db,
            &Query::Filter {
                table: "products".into(),
                predicate: Predicate::True,
                projection: Some(vec!["name".into()]),
                limit: Some(1),
            },
        )
        .unwrap();
        let QueryResult::Rows(rows) = r else { panic!() };
        assert_eq!(rows[0].1.len(), 1);
        assert!(rows[0].1.get("name").is_some());
    }

    #[test]
    fn aggregate_count_sum_avg() {
        let db = db();
        let q = |agg| Query::Aggregate {
            table: "products".into(),
            predicate: Predicate::True,
            agg,
            group_by: None,
        };
        let (r, _) = execute(&db, &q(Aggregate::Count)).unwrap();
        assert_eq!(r, QueryResult::Scalar(Value::Int(5)));
        let (r, _) = execute(&db, &q(Aggregate::Sum("price".into()))).unwrap();
        assert_eq!(r, QueryResult::Scalar(Value::Int(665)));
        let (r, _) = execute(&db, &q(Aggregate::Avg("price".into()))).unwrap();
        assert_eq!(r, QueryResult::Scalar(Value::Float(133.0)));
        let (r, _) = execute(&db, &q(Aggregate::Min("price".into()))).unwrap();
        assert_eq!(r, QueryResult::Scalar(Value::Int(5)));
        let (r, _) = execute(&db, &q(Aggregate::Max("price".into()))).unwrap();
        assert_eq!(r, QueryResult::Scalar(Value::Int(500)));
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let (r, _) = execute(
            &db,
            &Query::Aggregate {
                table: "products".into(),
                predicate: Predicate::True,
                agg: Aggregate::Count,
                group_by: Some("category".into()),
            },
        )
        .unwrap();
        let QueryResult::Groups(groups) = r else { panic!() };
        assert_eq!(groups.len(), 3);
        // BTreeMap ordering: adhesives, explosives, tools.
        assert_eq!(groups[0].0, Value::Str("adhesives".into()));
        assert_eq!(groups[0].1, Value::Int(1));
        assert_eq!(groups[2].1, Value::Int(2));
    }

    #[test]
    fn aggregate_type_error() {
        let db = db();
        let err = execute(
            &db,
            &Query::Aggregate {
                table: "products".into(),
                predicate: Predicate::True,
                agg: Aggregate::Sum("name".into()),
                group_by: None,
            },
        );
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn join_matches_on_field() {
        let mut db = db();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "reviews".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "reviews".into(),
                key: 1,
                doc: Document::new().with("product", "anvil").with("stars", 5i64),
            },
            UpdateOp::Insert {
                table: "reviews".into(),
                key: 2,
                doc: Document::new().with("product", "anvil").with("stars", 4i64),
            },
            UpdateOp::Insert {
                table: "reviews".into(),
                key: 3,
                doc: Document::new().with("product", "rope").with("stars", 2i64),
            },
        ])
        .unwrap();
        let (r, c) = execute(
            &db,
            &Query::Join {
                left: "products".into(),
                right: "reviews".into(),
                left_field: "name".into(),
                right_field: "product".into(),
                predicate: Predicate::cmp("r.stars", CmpOp::Ge, 4i64),
                limit: None,
            },
        )
        .unwrap();
        let QueryResult::Rows(rows) = r else { panic!() };
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|(_, d)| d.get("name") == Some(&Value::Str("anvil".into()))));
        // Join scanned both tables.
        assert_eq!(c.rows_scanned, 5 + 3);
    }

    #[test]
    fn file_read_and_grep() {
        let db = db();
        let (r, _) = execute(
            &db,
            &Query::ReadFile {
                path: "/docs/readme".into(),
            },
        )
        .unwrap();
        let QueryResult::Text(Some(text)) = r else { panic!() };
        assert!(text.contains("acme"));

        let (r, c) = execute(
            &db,
            &Query::Grep {
                pattern: "best*class".into(),
                prefix: "/docs".into(),
            },
        )
        .unwrap();
        let QueryResult::Matches(ms) = r else { panic!() };
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].path, "/docs/catalog");
        assert!(c.bytes_processed > 0);
    }

    #[test]
    fn read_file_range_slices_the_file() {
        let db = db();
        let full = match execute(
            &db,
            &Query::ReadFile {
                path: "/docs/readme".into(),
            },
        )
        .unwrap()
        .0
        {
            QueryResult::Text(Some(t)) => t,
            other => panic!("unexpected result {other:?}"),
        };
        let (r, c) = execute(
            &db,
            &Query::ReadFileRange {
                path: "/docs/readme".into(),
                offset: 5,
                len: 8,
            },
        )
        .unwrap();
        assert_eq!(r, QueryResult::Text(Some(full[5..13].to_string())));
        assert_eq!(c.bytes_processed, 8);

        // Past-the-end offsets yield an empty (but present) result.
        let (r, _) = execute(
            &db,
            &Query::ReadFileRange {
                path: "/docs/readme".into(),
                offset: 1 << 20,
                len: 8,
            },
        )
        .unwrap();
        assert_eq!(r, QueryResult::Text(Some(String::new())));

        // Missing files are None, like ReadFile.
        let (r, _) = execute(
            &db,
            &Query::ReadFileRange {
                path: "/docs/missing".into(),
                offset: 0,
                len: 8,
            },
        )
        .unwrap();
        assert_eq!(r, QueryResult::Text(None));
    }

    #[test]
    fn grep_bad_pattern_errors() {
        let db = db();
        assert!(matches!(
            execute(
                &db,
                &Query::Grep {
                    pattern: "[oops".into(),
                    prefix: "/".into(),
                },
            ),
            Err(StoreError::BadPattern(_))
        ));
    }

    #[test]
    fn list_files() {
        let db = db();
        let (r, _) = execute(
            &db,
            &Query::ListFiles {
                prefix: "/docs".into(),
            },
        )
        .unwrap();
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn missing_table_errors() {
        let db = db();
        assert!(matches!(
            execute(
                &db,
                &Query::GetRow {
                    table: "nope".into(),
                    key: 1,
                },
            ),
            Err(StoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn determinism_same_query_same_hash() {
        let db = db();
        let q = Query::Filter {
            table: "products".into(),
            predicate: Predicate::cmp("price", CmpOp::Ge, 10i64),
            projection: None,
            limit: None,
        };
        let (r1, _) = execute(&db, &q).unwrap();
        let (r2, _) = execute(&db, &q).unwrap();
        assert_eq!(r1.sha1(), r2.sha1());
    }

    #[test]
    fn cost_merge() {
        let a = QueryCost {
            rows_scanned: 1,
            index_probes: 2,
            bytes_processed: 3,
            rows_returned: 4,
        };
        let b = a;
        let m = a.merge(b);
        assert_eq!(m.rows_scanned, 2);
        assert_eq!(m.rows_returned, 8);
    }
}
