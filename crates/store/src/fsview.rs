//! File-system flavoured content: paths, file reads, and grep.
//!
//! Models the paper's motivating example — "it should not only support
//! operations of the type `read FileName`, but also operations of the type
//! `grep Expression Path`" (Section 2).

use crate::error::StoreError;
use crate::pattern::Pattern;
use crate::pmap::PMap;
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// One grep hit: file, line number (1-based), and the matching line.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrepMatch {
    /// Path of the file containing the match.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The matching line's text.
    pub text: String,
}

/// An in-memory tree of text files keyed by path.
///
/// The tree is persistent ([`PMap`]): cloning a view is O(1) and writes
/// copy only the touched path, so database snapshots share file content
/// structurally.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FsView {
    files: PMap<String, String>,
}

impl FsView {
    /// Creates an empty view.
    pub fn new() -> Self {
        FsView::default()
    }

    /// Creates or replaces a file.
    pub fn write_file(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Appends to a file, creating it when absent.
    pub fn append_file(&mut self, path: impl Into<String>, contents: &str) {
        let path = path.into();
        match self.files.get_mut(&path) {
            Some(existing) => existing.push_str(contents),
            None => {
                self.files.insert(path, contents.to_string());
            }
        }
    }

    /// Deletes a file; fails when absent.
    pub fn delete_file(&mut self, path: &str) -> Result<(), StoreError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchFile(path.to_string()))
    }

    /// Reads a file's contents.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// Lists paths under `prefix` (all files when empty).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .iter_from(prefix)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes of file content.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }

    /// Greps all files under `prefix` line-by-line with `pattern`
    /// (search semantics).  Returns the matches and the number of bytes
    /// scanned, which feeds query cost accounting.
    pub fn grep(&self, pattern: &Pattern, prefix: &str) -> (Vec<GrepMatch>, usize) {
        let mut matches = Vec::new();
        let mut scanned = 0usize;
        for (path, contents) in self
            .files
            .iter_from(prefix)
            .take_while(|(p, _)| p.starts_with(prefix))
        {
            scanned += contents.len();
            for (i, line) in contents.lines().enumerate() {
                if pattern.search(line) {
                    matches.push(GrepMatch {
                        path: path.clone(),
                        line: (i + 1) as u32,
                        text: line.to_string(),
                    });
                }
            }
        }
        (matches, scanned)
    }

    /// The Merkle digest of the file tree (cached; see
    /// [`PMap::root_hash`]).
    pub fn files_digest(&self) -> Hash256 {
        self.files.root_hash()
    }

    /// O(log n) inclusion (or absence) proof for a path against
    /// [`FsView::files_digest`] (see [`PMap::prove`]).
    pub fn prove_file(&self, path: &str) -> crate::pmap::InclusionProof<String> {
        self.files.prove(&path.to_string())
    }

    /// Shared-vs-owned node counts of the file tree (memory telemetry).
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        self.files.node_stats()
    }

    /// Appends a canonical encoding of the whole tree (a linear scan —
    /// digests should prefer [`FsView::files_digest`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.files.len() as u64).to_be_bytes());
        for (path, contents) in self.files.iter() {
            out.extend_from_slice(&(path.len() as u32).to_be_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(&(contents.len() as u64).to_be_bytes());
            out.extend_from_slice(contents.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsView {
        let mut f = FsView::new();
        f.write_file("/var/log/app.log", "boot ok\nerror: disk full\nshutdown\n");
        f.write_file("/var/log/db.log", "connected\nquery slow\n");
        f.write_file("/etc/config", "mode=fast\n");
        f
    }

    #[test]
    fn read_write_delete() {
        let mut f = fs();
        assert!(f.read("/etc/config").unwrap().contains("mode=fast"));
        assert!(f.read("/missing").is_none());
        f.delete_file("/etc/config").unwrap();
        assert!(f.read("/etc/config").is_none());
        assert_eq!(
            f.delete_file("/etc/config"),
            Err(StoreError::NoSuchFile("/etc/config".into()))
        );
    }

    #[test]
    fn append_creates_and_extends() {
        let mut f = FsView::new();
        f.append_file("/a", "one\n");
        f.append_file("/a", "two\n");
        assert_eq!(f.read("/a"), Some("one\ntwo\n"));
    }

    #[test]
    fn grep_finds_lines_with_line_numbers() {
        let f = fs();
        let pat = Pattern::compile("error").unwrap();
        let (hits, scanned) = f.grep(&pat, "/var/log");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/var/log/app.log");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].text.contains("disk full"));
        assert!(scanned > 0);
    }

    #[test]
    fn grep_respects_prefix() {
        let f = fs();
        let pat = Pattern::compile("*").unwrap();
        let (hits_all, _) = f.grep(&pat, "");
        let (hits_etc, _) = f.grep(&pat, "/etc");
        assert!(hits_all.len() > hits_etc.len());
        assert!(hits_etc.iter().all(|m| m.path.starts_with("/etc")));
    }

    #[test]
    fn grep_glob_patterns() {
        let f = fs();
        let pat = Pattern::compile("mode=*").unwrap();
        let (hits, _) = f.grep(&pat, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/etc/config");
    }

    #[test]
    fn list_and_counts() {
        let f = fs();
        assert_eq!(f.file_count(), 3);
        assert_eq!(f.list("/var").len(), 2);
        assert_eq!(f.list("").len(), 3);
        assert!(f.total_bytes() > 20);
    }

    #[test]
    fn encoding_sensitive_to_content() {
        let a = fs();
        let mut b = fs();
        b.append_file("/etc/config", "extra=1\n");
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_ne!(ea, eb);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut f = fs();
        let snap = f.clone();
        let snap_digest = snap.files_digest();
        f.append_file("/etc/config", "extra=1\n");
        f.delete_file("/var/log/db.log").unwrap();
        assert_eq!(snap.file_count(), 3);
        assert_eq!(snap.read("/etc/config"), Some("mode=fast\n"));
        assert_eq!(snap.files_digest(), snap_digest);
        assert_ne!(f.files_digest(), snap_digest);
    }
}
