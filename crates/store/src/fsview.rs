//! File-system flavoured content: paths, file reads, and grep — built
//! on the content-addressed chunk store.
//!
//! Models the paper's motivating example — "it should not only support
//! operations of the type `read FileName`, but also operations of the type
//! `grep Expression Path`" (Section 2).
//!
//! Since the chunked rebuild, a file is a [`FileManifest`] (ordered
//! chunk digests) in the path tree plus reference-counted chunk bytes in
//! a [`ChunkStore`]: identical content is stored once across files, an
//! append re-hashes only the tail chunk, and the Merkle digest commits
//! to manifests — so any single chunk of a file can be authenticated
//! without the rest of it (the streamed-read proof path).

use crate::chunk::{chunk_spans, ChunkId, ChunkStats, ChunkStore, FileManifest, ManifestEntry};
use crate::error::StoreError;
use crate::pattern::Pattern;
use crate::pmap::PMap;
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// One grep hit: file, line number (1-based), and the matching line.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrepMatch {
    /// Path of the file containing the match.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The matching line's text.
    pub text: String,
}

/// An in-memory tree of text files keyed by path.
///
/// Both layers are persistent ([`PMap`]): cloning a view is O(1) and
/// writes copy only the touched paths, so database snapshots share file
/// content (and the chunk store's bytes) structurally.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FsView {
    files: PMap<String, FileManifest>,
    store: ChunkStore,
}

impl FsView {
    /// Creates an empty view.
    pub fn new() -> Self {
        FsView::default()
    }

    /// Creates or replaces a file.
    pub fn write_file(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        let path = path.into();
        let contents = contents.into();
        let old = self.files.get(&path).cloned();
        let manifest = self.store_chunks(contents.as_bytes());
        self.files.insert(path, manifest);
        if let Some(old) = old {
            self.release_manifest(&old);
        }
    }

    /// Appends to a file, creating it when absent.
    ///
    /// O(chunk), not O(file): only `tail-chunk ‖ contents` is re-chunked
    /// and re-hashed — the restart-at-cut chunker guarantees the result
    /// is byte-identical to re-chunking the whole file from scratch, so
    /// every earlier chunk's digest (and its dedup sharing) survives.
    pub fn append_file(&mut self, path: impl Into<String>, contents: &str) {
        let path = path.into();
        let Some(mut manifest) = self.files.get(&path).cloned() else {
            self.write_file(path, contents.to_string());
            return;
        };
        let old_tail = manifest.chunks.pop();
        let mut tail = Vec::with_capacity(
            old_tail.map_or(0, |e| e.len as usize) + contents.len(),
        );
        if let Some(entry) = old_tail {
            let bytes = self
                .store
                .get(&entry.id)
                .expect("manifest references a stored chunk");
            tail.extend_from_slice(bytes);
        }
        tail.extend_from_slice(contents.as_bytes());
        for (s, e) in chunk_spans(&tail) {
            let id = self.store.retain(&tail[s..e]);
            manifest.chunks.push(ManifestEntry {
                id,
                len: (e - s) as u32,
            });
        }
        // Release after retaining: an unchanged tail keeps its refcount.
        if let Some(entry) = old_tail {
            self.store.release(entry.id, entry.len);
        }
        manifest.total_len += contents.len() as u64;
        self.files.insert(path, manifest);
    }

    /// Deletes a file; fails when absent.
    pub fn delete_file(&mut self, path: &str) -> Result<(), StoreError> {
        match self.files.remove(path) {
            Some(manifest) => {
                self.release_manifest(&manifest);
                Ok(())
            }
            None => Err(StoreError::NoSuchFile(path.to_string())),
        }
    }

    /// Reads a file's contents (assembled from its chunks).
    pub fn read(&self, path: &str) -> Option<String> {
        let manifest = self.files.get(path)?;
        Some(self.assemble(manifest))
    }

    /// Reads `len` bytes of a file from byte `offset` (clamped to the
    /// file), touching only the overlapping chunks.
    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> Option<String> {
        let manifest = self.files.get(path)?;
        let (first, end) = manifest.chunk_range(offset, len);
        if first == end {
            return Some(String::new());
        }
        let start_off = manifest.chunk_offset(first);
        let mut bytes = Vec::new();
        for entry in &manifest.chunks[first..end] {
            bytes.extend_from_slice(
                self.store
                    .get(&entry.id)
                    .expect("manifest references a stored chunk"),
            );
        }
        let lo = (offset.min(manifest.total_len) - start_off) as usize;
        let hi = (offset
            .saturating_add(len)
            .min(manifest.total_len)
            - start_off) as usize;
        Some(String::from_utf8_lossy(&bytes[lo..hi]).into_owned())
    }

    /// The chunk manifest of a file (what the Merkle digest commits to).
    pub fn manifest(&self, path: &str) -> Option<&FileManifest> {
        self.files.get(path)
    }

    /// The stored bytes of one chunk.
    pub fn chunk_bytes(&self, id: &ChunkId) -> Option<&[u8]> {
        self.store.get(id)
    }

    /// Lists paths under `prefix` (all files when empty).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .iter_from(prefix)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes of file content (logical: dedup does not shrink it).
    pub fn total_bytes(&self) -> usize {
        self.store.stats().logical_bytes as usize
    }

    /// Chunk-store telemetry: distinct chunks, dedup hits, logical vs
    /// physical bytes.
    pub fn chunk_stats(&self) -> ChunkStats {
        self.store.stats()
    }

    /// Greps all files under `prefix` line-by-line with `pattern`
    /// (search semantics).  Returns the matches and the number of bytes
    /// scanned, which feeds query cost accounting.
    pub fn grep(&self, pattern: &Pattern, prefix: &str) -> (Vec<GrepMatch>, usize) {
        let mut matches = Vec::new();
        let mut scanned = 0usize;
        for (path, manifest) in self
            .files
            .iter_from(prefix)
            .take_while(|(p, _)| p.starts_with(prefix))
        {
            scanned += manifest.total_len as usize;
            let contents = self.assemble(manifest);
            for (i, line) in contents.lines().enumerate() {
                if pattern.search(line) {
                    matches.push(GrepMatch {
                        path: path.clone(),
                        line: (i + 1) as u32,
                        text: line.to_string(),
                    });
                }
            }
        }
        (matches, scanned)
    }

    /// The Merkle digest of the file tree (cached; see
    /// [`PMap::root_hash`]).  Commits to per-file manifests, whose chunk
    /// digests commit to every content byte.
    pub fn files_digest(&self) -> Hash256 {
        self.files.root_hash()
    }

    /// O(log n) inclusion (or absence) proof for a path against
    /// [`FsView::files_digest`] (see [`PMap::prove`]).
    pub fn prove_file(&self, path: &str) -> crate::pmap::InclusionProof<String> {
        self.files.prove(&path.to_string())
    }

    /// Shared-vs-owned node counts across the path tree and the chunk
    /// store (memory telemetry).
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        let mut stats = self.files.node_stats();
        stats.merge(self.store.node_stats());
        stats
    }

    /// Appends a canonical encoding of the whole tree (a linear scan —
    /// digests should prefer [`FsView::files_digest`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.files.len() as u64).to_be_bytes());
        for (path, manifest) in self.files.iter() {
            out.extend_from_slice(&(path.len() as u32).to_be_bytes());
            out.extend_from_slice(path.as_bytes());
            crate::pmap::MerkleContent::content_encode(manifest, out);
        }
    }

    /// Chunks `data`, retaining every chunk in the store, and returns
    /// the manifest.
    fn store_chunks(&mut self, data: &[u8]) -> FileManifest {
        let mut manifest = FileManifest {
            total_len: data.len() as u64,
            chunks: Vec::new(),
        };
        for (s, e) in chunk_spans(data) {
            let id = self.store.retain(&data[s..e]);
            manifest.chunks.push(ManifestEntry {
                id,
                len: (e - s) as u32,
            });
        }
        manifest
    }

    /// Drops one reference from every chunk of a manifest.
    fn release_manifest(&mut self, manifest: &FileManifest) {
        for entry in &manifest.chunks {
            self.store.release(entry.id, entry.len);
        }
    }

    /// Reassembles a manifest's contents from the chunk store.
    fn assemble(&self, manifest: &FileManifest) -> String {
        let mut bytes = Vec::with_capacity(manifest.total_len as usize);
        for entry in &manifest.chunks {
            bytes.extend_from_slice(
                self.store
                    .get(&entry.id)
                    .expect("manifest references a stored chunk"),
            );
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsView {
        let mut f = FsView::new();
        f.write_file("/var/log/app.log", "boot ok\nerror: disk full\nshutdown\n");
        f.write_file("/var/log/db.log", "connected\nquery slow\n");
        f.write_file("/etc/config", "mode=fast\n");
        f
    }

    /// Deterministic multi-chunk content (mirrors the dataset's log files).
    fn big(lines: usize, tag: u64) -> String {
        (0..lines)
            .map(|l| format!("entry {l:05} tag={tag:04} code={:04}\n", (l as u64 * 31 + tag) % 9973))
            .collect()
    }

    #[test]
    fn read_write_delete() {
        let mut f = fs();
        assert!(f.read("/etc/config").unwrap().contains("mode=fast"));
        assert!(f.read("/missing").is_none());
        f.delete_file("/etc/config").unwrap();
        assert!(f.read("/etc/config").is_none());
        assert_eq!(
            f.delete_file("/etc/config"),
            Err(StoreError::NoSuchFile("/etc/config".into()))
        );
    }

    #[test]
    fn append_creates_and_extends() {
        let mut f = FsView::new();
        f.append_file("/a", "one\n");
        f.append_file("/a", "two\n");
        assert_eq!(f.read("/a").as_deref(), Some("one\ntwo\n"));
    }

    #[test]
    fn round_trips_multi_chunk_files() {
        let mut f = FsView::new();
        let contents = big(3_000, 7);
        f.write_file("/big", contents.clone());
        assert!(f.manifest("/big").unwrap().chunks.len() > 1);
        assert_eq!(f.read("/big").as_deref(), Some(contents.as_str()));
    }

    #[test]
    fn append_rehashes_only_the_tail_chunk() {
        let mut f = FsView::new();
        f.write_file("/log", big(3_000, 1));
        let before = f.manifest("/log").unwrap().clone();
        assert!(before.chunks.len() > 2);

        f.append_file("/log", "one more line\n");
        let after = f.manifest("/log").unwrap().clone();

        // Every chunk but the old tail is byte-identical (same digests).
        let stable = &before.chunks[..before.chunks.len() - 1];
        assert_eq!(&after.chunks[..stable.len()], stable);
        assert_eq!(
            after.total_len,
            before.total_len + "one more line\n".len() as u64
        );
        // And the manifest matches a from-scratch chunking of the result.
        let assembled = f.read("/log").unwrap();
        assert_eq!(after, FileManifest::of(assembled.as_bytes()));
    }

    #[test]
    fn shared_content_is_stored_once() {
        let mut f = FsView::new();
        let shared = big(2_000, 3);
        f.write_file("/a", shared.clone());
        let solo = f.chunk_stats();
        assert_eq!(solo.chunks_deduped, 0);
        assert_eq!(solo.logical_bytes, solo.physical_bytes);

        // A second file with the same body plus a distinct tail: all but
        // the tail chunk dedup against /a.
        f.write_file("/b", format!("{shared}unique trailer for b\n"));
        let both = f.chunk_stats();
        assert!(both.chunks_deduped > 0, "expected dedup hits");
        assert!(both.physical_bytes < both.logical_bytes);
        assert!(both.dedup_ratio() > 0.3, "ratio {}", both.dedup_ratio());

        // Deleting one sharer keeps the other readable.
        f.delete_file("/a").unwrap();
        assert!(f.read("/b").unwrap().starts_with("entry 00000"));
        // Dropping the last reference frees the bytes.
        f.delete_file("/b").unwrap();
        let empty = f.chunk_stats();
        assert_eq!(empty.chunks_stored, 0);
        assert_eq!(empty.physical_bytes, 0);
    }

    #[test]
    fn empty_files_round_trip() {
        let mut f = FsView::new();
        f.write_file("/empty", "");
        assert_eq!(f.read("/empty").as_deref(), Some(""));
        assert_eq!(f.manifest("/empty").unwrap().chunks.len(), 0);
        assert_eq!(f.read_range("/empty", 0, 10).as_deref(), Some(""));
        f.append_file("/empty", "now full");
        assert_eq!(f.read("/empty").as_deref(), Some("now full"));
        f.delete_file("/empty").unwrap();
        assert_eq!(f.chunk_stats().chunks_stored, 0);
    }

    #[test]
    fn read_range_matches_full_read() {
        let mut f = FsView::new();
        let contents = big(3_000, 9);
        f.write_file("/r", contents.clone());
        assert_eq!(
            f.read_range("/r", 0, u64::MAX).as_deref(),
            Some(contents.as_str())
        );
        assert_eq!(f.read_range("/r", 5, 40).as_deref(), Some(&contents[5..45]));
        let tail_off = contents.len() as u64 - 7;
        assert_eq!(
            f.read_range("/r", tail_off, 100).as_deref(),
            Some(&contents[contents.len() - 7..])
        );
        assert_eq!(f.read_range("/r", contents.len() as u64 + 1, 4).as_deref(), Some(""));
        assert!(f.read_range("/missing", 0, 4).is_none());
    }

    #[test]
    fn mid_file_edit_touches_only_local_chunks() {
        let mut f = FsView::new();
        let contents = big(4_000, 5);
        f.write_file("/doc", contents.clone());
        let before = f.manifest("/doc").unwrap().clone();
        assert!(before.chunks.len() > 4);

        // Flip one byte in the middle; rewrite the file.
        let mid = contents.len() / 2;
        let mut edited = contents.into_bytes();
        edited[mid] = b'#';
        f.write_file("/doc", String::from_utf8(edited).unwrap());
        let after = f.manifest("/doc").unwrap().clone();

        let changed = after
            .chunks
            .iter()
            .filter(|e| !before.chunks.contains(e))
            .count();
        // Only the chunk(s) around the edit differ; the rest dedup.
        assert!(changed >= 1);
        assert!(
            changed <= 3,
            "{changed} of {} chunks changed for a 1-byte edit",
            after.chunks.len()
        );
    }

    #[test]
    fn grep_finds_lines_with_line_numbers() {
        let f = fs();
        let pat = Pattern::compile("error").unwrap();
        let (hits, scanned) = f.grep(&pat, "/var/log");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/var/log/app.log");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].text.contains("disk full"));
        assert!(scanned > 0);
    }

    #[test]
    fn grep_respects_prefix() {
        let f = fs();
        let pat = Pattern::compile("*").unwrap();
        let (hits_all, _) = f.grep(&pat, "");
        let (hits_etc, _) = f.grep(&pat, "/etc");
        assert!(hits_all.len() > hits_etc.len());
        assert!(hits_etc.iter().all(|m| m.path.starts_with("/etc")));
    }

    #[test]
    fn grep_glob_patterns() {
        let f = fs();
        let pat = Pattern::compile("mode=*").unwrap();
        let (hits, _) = f.grep(&pat, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/etc/config");
    }

    #[test]
    fn list_and_counts() {
        let f = fs();
        assert_eq!(f.file_count(), 3);
        assert_eq!(f.list("/var").len(), 2);
        assert_eq!(f.list("").len(), 3);
        assert!(f.total_bytes() > 20);
    }

    #[test]
    fn encoding_sensitive_to_content() {
        let a = fs();
        let mut b = fs();
        b.append_file("/etc/config", "extra=1\n");
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_ne!(ea, eb);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut f = fs();
        let snap = f.clone();
        let snap_digest = snap.files_digest();
        f.append_file("/etc/config", "extra=1\n");
        f.delete_file("/var/log/db.log").unwrap();
        assert_eq!(snap.file_count(), 3);
        assert_eq!(snap.read("/etc/config").as_deref(), Some("mode=fast\n"));
        assert_eq!(snap.files_digest(), snap_digest);
        assert_ne!(f.files_digest(), snap_digest);
    }
}
