//! The replicated data content substrate.
//!
//! The paper's system replicates "a database, the contents of a large Web
//! site, or a file system" and must support reads that are "very complex;
//! they can request parts of the data content, but also the results of
//! applying aggregation functions on this content … not only operations of
//! the type `read FileName`, but also operations of the type `grep
//! Expression Path`" (Section 2).
//!
//! This crate implements exactly that content model:
//!
//! * [`value`] / [`document`] — typed field values and records;
//! * [`pmap`] — the persistent (copy-on-write) ordered map every
//!   container is built on: O(1) clone, path-copying writes, and cached
//!   Merkle subtree digests;
//! * [`table`] — tables with a primary key and secondary indexes;
//! * [`database`] — the named-table + file-system container, with the
//!   `content_version` counter and an incrementally maintained
//!   whole-state digest;
//! * [`chunk`] — the content-defined chunker and content-addressed,
//!   refcounted chunk store (dedup across files, O(chunk) appends);
//! * [`fsview`] — the file-system flavoured content (`read`, `grep`),
//!   built on per-file chunk manifests over the shared chunk store;
//! * [`predicate`] / [`pattern`] — filter expressions and the from-scratch
//!   glob/substring matcher that powers grep;
//! * [`query`] — the query AST (point reads, ranges, filters, grep,
//!   aggregations with group-by, joins);
//! * [`exec`] — the executor, which returns both the result and a
//!   [`exec::QueryCost`] so the simulator can charge realistic work;
//! * [`update`] — deterministic write operations;
//! * [`cache`] — a `(version, query) → result` cache (the auditor's main
//!   optimisation in Section 3.4);
//! * [`snapshot`] — versioned snapshots enabling the delayed-discovery
//!   rollback of Section 3.5 (O(1) per version thanks to structural
//!   sharing);
//! * [`proof`] — authenticated point reads: O(log n) Merkle path proofs
//!   from a row or file up to [`Database::state_digest`], presence and
//!   absence alike.
//!
//! Everything is deterministic: canonical byte encodings make result hashes
//! reproducible across masters, slaves, and the auditor, and the
//! persistent trees are history-independent so equal content always
//! yields equal digests.
//!
//! # The two read paths
//!
//! The protocol layer (`sdr-core`) serves reads in one of two ways, and
//! this crate supplies the substrate for both:
//!
//! * **Pledge + audit** (computed queries — filters, aggregates, joins,
//!   grep): the slave executes and signs a pledge over the result hash;
//!   correctness is *probabilistic and after the fact* — a lie survives
//!   until a double-check or the auditor's re-execution catches it.
//!   Per-read cost: one result hash for the client, one re-execution for
//!   the auditor.
//! * **Proof-verified** (static point reads — `GetRow`, `ReadFile`): the
//!   slave attaches a [`proof::StateProof`] anchored in a master-signed
//!   state digest.  Correctness is *deterministic and immediate*: the
//!   client verifies O(log n) hashes and needs no auditor, no
//!   double-check, and no trust in the slave at all.  Per-read cost:
//!   ~`depth × 65` proof bytes on the wire and O(log n) hashes at both
//!   ends — no trusted-party work whatsoever.
//!
//! Streamed file reads (`ReadFileRange`) extend the proof-verified
//! path to large files: the slave sends one [`proof::StreamProof`]
//! header (Merkle path from the file's chunk *manifest* to the signed
//! digest) and then raw chunks; the client verifies each chunk against
//! the manifest as it arrives, so corruption is caught at the offending
//! chunk without ever buffering the whole file.
//!
//! # Cost model
//!
//! With `n` rows/files and point writes touching one entry:
//!
//! | operation                        | cost                            |
//! |----------------------------------|---------------------------------|
//! | `Database::clone` / snapshot     | O(1)                            |
//! | `apply_write` (per touched row)  | O(log n) node copies            |
//! | failed-batch rollback            | O(1) (restore pre-write handle) |
//! | `state_digest` after a write     | O(log n) re-hashed nodes        |
//! | `state_digest`, nothing changed  | O(1)                            |
//! | `prove_row` / `prove_file`       | O(log n) (cached subtree hashes)|
//! | proof verification (client side) | O(log n) hashes                 |
//!
//! Range reads (`ScanRange`, half-open `[start, end)` over `k` rows)
//! ride the same digest under one [`proof::RangeScanProof`]: a pruned
//! treap skeleton whose out-of-range subtrees collapse to cached
//! hashes and whose in-range rows are rebuilt from the claimed answer,
//! so the proof attests membership *and* completeness — omitting any
//! row changes the recomputed root:
//!
//! | operation                           | cost                              |
//! |-------------------------------------|-----------------------------------|
//! | `k` point reads, proved one by one  | O(k log n) hashes, ~`k·depth×65` B|
//! | `prove_scan` / range verify         | O(log n + k) hashes               |
//! | range proof on the wire             | O(log n) skeleton + O(k) rows     |
//! | cross-shard stitched scan (s shards)| s range proofs, one per sub-range |
//!
//! A scan crossing shard boundaries is split at them by the client,
//! each piece verified against its own shard's signed digest stamp,
//! and stitched only if the verified pieces tile `[start, end)`
//! exactly — so a stitched scan is exactly as strong as its weakest
//! piece, and one Byzantine shard replica cannot corrupt, truncate, or
//! pad the merged answer.
//!
//! File content is chunked (content-defined, ~1.25 KiB average) into a
//! shared content-addressed store; with `c` chunks per file and `b`
//! bytes written:
//!
//! | operation                          | cost                              |
//! |------------------------------------|-----------------------------------|
//! | chunked `WriteFile`                | O(b) hash + O(log n) tree copies  |
//! | chunked `AppendFile`               | O(appended + tail chunk), not O(b)|
//! | duplicate content across files     | stored once (refcounted)          |
//! | `prove_stream` (header)            | O(c) build; wire is the *slice*:  |
//! |                                    | covering entries + O(log c) path  |
//! | stream verify (client, per chunk)  | O(chunk) hash, O(1) memory        |
//!
//! # Batched commits
//!
//! One [`Database::apply_write`] call is one atomic commit: the whole
//! op slice applies or none of it does (any failing op restores the
//! pre-write handle in O(1) — structural sharing makes the backup a
//! pointer copy, not a deep clone), and success bumps
//! `content_version` by exactly one.  The protocol layer
//! (`sdr-core`) builds its *batched write rounds* directly on this
//! contract: a sequencer packs many client writes into one ordered
//! round and every replica applies them as consecutive `apply_write`
//! calls — `n` writes advance the version by exactly `n`, a failed
//! write rolls back alone without disturbing its neighbours, and the
//! incremental [`Database::state_digest`] stays O(log n) per commit,
//! so re-digesting after every write in a batch costs far less than
//! one signature.  That is what lets a single master-signed digest
//! stamp anchor the batch's final version (and every point-read
//! [`proof`] served against it) instead of one stamp per write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunk;
pub mod database;
pub mod document;
pub mod error;
pub mod exec;
pub mod fsview;
pub mod pattern;
pub mod pmap;
pub mod predicate;
pub mod proof;
pub mod query;
pub mod snapshot;
pub mod table;
pub mod update;
pub mod value;

pub use cache::{LruByteCache, QueryCache};
pub use chunk::{ChunkId, ChunkStats, ChunkStore, FileManifest, ManifestEntry};
pub use database::{digest_from_parts, Database};
pub use document::Document;
pub use error::StoreError;
pub use exec::{execute, QueryCost};
pub use fsview::FsView;
pub use pattern::Pattern;
pub use pmap::{InclusionProof, MerkleContent, NodeStats, PMap, ProofError, RangeProof};
pub use predicate::{CmpOp, Predicate};
pub use proof::{FileProof, RowProof, StateProof, StreamProof};
pub use query::{Aggregate, Query, QueryResult};
pub use snapshot::SnapshotStore;
pub use table::Table;
pub use update::UpdateOp;
pub use value::Value;
