//! Glob-style pattern matching, the engine behind `grep Expression Path`.
//!
//! Supported syntax (a pragmatic subset of POSIX glob):
//!
//! * `?` — any single character;
//! * `*` — any run of characters (including empty);
//! * `[a-z]`, `[abc]`, `[!0-9]` — character classes, with negation;
//! * any other character matches itself.
//!
//! [`Pattern::matches`] anchors at both ends; [`Pattern::search`] finds the
//! pattern anywhere in a line (grep semantics).  Matching is
//! iterative-with-backtracking over `*`, O(n·m) worst case, no regex crate.

use crate::error::StoreError;
use serde::{Deserialize, Serialize};

/// One compiled pattern element.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum Token {
    Literal(char),
    AnyChar,
    AnyRun,
    Class { negated: bool, ranges: Vec<(char, char)> },
}

/// A compiled glob pattern.
///
/// # Examples
///
/// ```
/// use sdr_store::Pattern;
///
/// let pat = Pattern::compile("err*[0-9]").unwrap();
/// assert!(pat.matches("error42"));
/// assert!(!pat.matches("error"));
/// // `search` finds the pattern anywhere in a line (grep semantics).
/// assert!(pat.search("2024-01-01 error42: disk full"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    tokens: Vec<Token>,
    source: String,
}

impl Pattern {
    /// Compiles `source`; fails on an unterminated character class.
    pub fn compile(source: &str) -> Result<Self, StoreError> {
        let mut tokens = Vec::new();
        let mut chars = source.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '?' => tokens.push(Token::AnyChar),
                '*' => {
                    // Collapse runs of `*`.
                    if tokens.last() != Some(&Token::AnyRun) {
                        tokens.push(Token::AnyRun);
                    }
                }
                '[' => {
                    let negated = chars.peek() == Some(&'!');
                    if negated {
                        chars.next();
                    }
                    let mut ranges = Vec::new();
                    let mut closed = false;
                    let mut prev: Option<char> = None;
                    while let Some(cc) = chars.next() {
                        if cc == ']' && !ranges.is_empty() {
                            closed = true;
                            break;
                        }
                        if cc == ']' && prev.is_none() && ranges.is_empty() {
                            // A literal `]` first in the class.
                            ranges.push((']', ']'));
                            prev = Some(']');
                            continue;
                        }
                        if cc == '-' && prev.is_some() && chars.peek() != Some(&']') {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            ranges.pop();
                            ranges.push((lo, hi));
                            continue;
                        }
                        ranges.push((cc, cc));
                        prev = Some(cc);
                    }
                    if !closed {
                        return Err(StoreError::BadPattern("unterminated character class"));
                    }
                    tokens.push(Token::Class { negated, ranges });
                }
                '\\' => {
                    // Escape: next char is literal.
                    let lit = chars
                        .next()
                        .ok_or(StoreError::BadPattern("trailing backslash"))?;
                    tokens.push(Token::Literal(lit));
                }
                other => tokens.push(Token::Literal(other)),
            }
        }
        Ok(Pattern {
            tokens,
            source: source.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether the whole of `text` matches (anchored both ends).
    pub fn matches(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        Self::match_from(&self.tokens, &chars)
    }

    /// Whether the pattern occurs anywhere in `text` (grep semantics).
    ///
    /// A pattern already bracketed by `*` behaves identically to
    /// [`Pattern::matches`].
    pub fn search(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        // Equivalent to matching `*pattern*`.
        let mut padded = Vec::with_capacity(self.tokens.len() + 2);
        if self.tokens.first() != Some(&Token::AnyRun) {
            padded.push(Token::AnyRun);
        }
        padded.extend(self.tokens.iter().cloned());
        if padded.last() != Some(&Token::AnyRun) {
            padded.push(Token::AnyRun);
        }
        Self::match_from(&padded, &chars)
    }

    fn token_matches(tok: &Token, c: char) -> bool {
        match tok {
            Token::Literal(l) => *l == c,
            Token::AnyChar => true,
            Token::AnyRun => unreachable!("AnyRun handled by the driver"),
            Token::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
                inside != *negated
            }
        }
    }

    /// Iterative glob matcher with single-star backtracking.
    fn match_from(tokens: &[Token], text: &[char]) -> bool {
        let (mut ti, mut ci) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None; // (token after *, char pos)
        while ci < text.len() {
            if ti < tokens.len() && tokens[ti] == Token::AnyRun {
                star = Some((ti + 1, ci));
                ti += 1;
            } else if ti < tokens.len() && Self::token_matches(&tokens[ti], text[ci]) {
                ti += 1;
                ci += 1;
            } else if let Some((st, sc)) = star {
                // Backtrack: let the star swallow one more character.
                ti = st;
                ci = sc + 1;
                star = Some((st, sc + 1));
            } else {
                return false;
            }
        }
        while ti < tokens.len() && tokens[ti] == Token::AnyRun {
            ti += 1;
        }
        ti == tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Pattern::compile(pat).unwrap().matches(text)
    }
    fn s(pat: &str, text: &str) -> bool {
        Pattern::compile(pat).unwrap().search(text)
    }

    #[test]
    fn literals() {
        assert!(m("hello", "hello"));
        assert!(!m("hello", "hell"));
        assert!(!m("hello", "helloo"));
    }

    #[test]
    fn question_mark() {
        assert!(m("h?llo", "hello"));
        assert!(m("h?llo", "hallo"));
        assert!(!m("h?llo", "hllo"));
    }

    #[test]
    fn star() {
        assert!(m("he*o", "hello"));
        assert!(m("he*o", "heo"));
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("a*b*c", "aXXbYYc"));
        assert!(!m("a*b*c", "aXXcYYb"));
    }

    #[test]
    fn star_backtracking() {
        assert!(m("*aab", "aaab"));
        assert!(m("a*a*a", "aaa"));
        assert!(!m("a*a*a", "aa"));
    }

    #[test]
    fn classes() {
        assert!(m("[a-c]at", "bat"));
        assert!(!m("[a-c]at", "rat"));
        assert!(m("[!0-9]x", "ax"));
        assert!(!m("[!0-9]x", "5x"));
        assert!(m("file[0-9][0-9]", "file42"));
    }

    #[test]
    fn class_with_literal_members() {
        assert!(m("[abc]", "b"));
        assert!(!m("[abc]", "d"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\*b", "a*b"));
        assert!(!m(r"a\*b", "aXb"));
        assert!(m(r"a\[b", "a[b"));
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(Pattern::compile("[abc").is_err());
        assert!(Pattern::compile("trailing\\").is_err());
    }

    #[test]
    fn search_finds_substrings() {
        assert!(s("error", "2024-01-01 error: disk full"));
        assert!(s("err*full", "error: disk full"));
        assert!(!s("warning", "error: disk full"));
        // Anchored star patterns behave the same under search.
        assert!(s("*disk*", "error: disk full"));
    }

    #[test]
    fn unicode_safe() {
        assert!(m("gr?ß", "gruß"));
        assert!(s("日本", "こんにちは日本語"));
    }

    #[test]
    fn consecutive_stars_collapse() {
        let p = Pattern::compile("a**b").unwrap();
        assert!(p.matches("ab"));
        assert!(p.matches("aXXb"));
    }

    #[test]
    fn empty_pattern_matches_empty_only() {
        assert!(m("", ""));
        assert!(!m("", "x"));
    }
}
