//! Persistent ordered maps with cached Merkle subtree digests.
//!
//! [`PMap`] is the copy-on-write backbone of the store: a *deterministic
//! treap* whose nodes live behind [`Arc`].  Cloning a map is O(1) (one
//! reference-count bump); mutation copies only the O(log n) nodes on the
//! path from the root to the touched key, so a snapshot and its successor
//! share everything else.  Heap priorities are derived by hashing the key
//! itself, which makes the tree shape a pure function of the key *set* —
//! two maps holding the same entries are structurally identical no matter
//! what sequence of inserts and removes produced them (history
//! independence), so structural digests double as content digests.
//!
//! Every node caches the Merkle hash of its subtree (built from
//! [`sdr_crypto::merkle::leaf_hash`] / [`node_hash`]); path copying
//! naturally discards the caches along a mutated path and nothing else,
//! so re-computing the root digest after a point update re-hashes only
//! O(log n) nodes.
//!
//! Because the digest *is* a search tree, the map can also emit
//! **authenticated point reads**: [`PMap::prove`] produces an
//! [`InclusionProof`] — a hash path from an entry (or from the empty slot
//! where a missing key would live) up to [`PMap::root_hash`] — reusing
//! the cached subtree hashes so proof generation re-hashes only the
//! O(log n) entry commitments along the search path.  Verification
//! ([`InclusionProof::verify`]) checks both the hash fold and the
//! BST search-order consistency of the path, so absence proofs are as
//! binding as presence proofs.
//!
//! Cost model (n = entries, shared = a clone of this map is alive):
//!
//! | operation        | unshared        | shared                     |
//! |------------------|-----------------|----------------------------|
//! | `clone`          | O(1)            | O(1)                       |
//! | `get` / `iter`   | O(log n) / O(n) | same                       |
//! | `insert`/`remove`| O(log n)        | O(log n) node copies       |
//! | `get_mut`        | O(log n)        | O(log n) node copies       |
//! | `root_hash`      | O(1) amortized  | O(log n) after a mutation  |
//! | `prove`/`verify` | O(log n)        | O(log n)                   |

use sdr_crypto::merkle::{
    entry_commitment, fold_treap_path, leaf_hash, node_hash, treap_node_hash, TreapStep,
};
use sdr_crypto::Hash256;
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Keys a [`PMap`] can index: ordered, cloneable, and canonically
/// encodable.  The encoding feeds both the deterministic heap priority
/// and the per-entry Merkle leaf hash, so it must be injective and
/// self-delimiting.
pub trait PKey: Ord + Clone {
    /// Appends the canonical encoding of this key to `out`.
    fn encode_key(&self, out: &mut Vec<u8>);
}

impl PKey for u64 {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl PKey for String {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl PKey for crate::value::Value {
    fn encode_key(&self, out: &mut Vec<u8>) {
        self.encode_into(out);
    }
}

/// Values that can contribute to a [`PMap`]'s Merkle digest.
///
/// Only required by [`PMap::root_hash`]; maps over values without an
/// encoding (for example derived index postings) simply never ask for a
/// digest.
pub trait MerkleContent {
    /// Appends the canonical encoding of this value to `out`.
    fn content_encode(&self, out: &mut Vec<u8>);
}

impl MerkleContent for String {
    fn content_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_be_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl MerkleContent for crate::document::Document {
    fn content_encode(&self, out: &mut Vec<u8>) {
        self.encode_into(out);
    }
}

/// Deterministic heap priority: a hash of the key's canonical encoding.
///
/// FNV-1a accumulates the bytes; a splitmix64 finaliser diffuses them so
/// near-identical keys (sequential row ids) get uncorrelated priorities.
fn priority(encoded_key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in encoded_key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finaliser.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

struct Node<K, V> {
    key: K,
    value: V,
    /// Deterministic heap priority (ties broken by key order, so the
    /// composite `(prio, key)` is a strict total order over live nodes).
    prio: u64,
    left: Link<K, V>,
    right: Link<K, V>,
    /// Subtree entry count.
    len: usize,
    /// Cached Merkle hash of this subtree; empty on every fresh
    /// (path-copied) node, filled lazily by [`PMap::root_hash`].
    hash: OnceLock<Hash256>,
}

impl<K: Clone, V: Clone> Clone for Node<K, V> {
    fn clone(&self) -> Self {
        // Cloning happens only on the copy-on-write path (`Arc::make_mut`
        // just before a mutation), so the copy starts with a cold digest
        // cache.
        Node {
            key: self.key.clone(),
            value: self.value.clone(),
            prio: self.prio,
            left: self.left.clone(),
            right: self.right.clone(),
            len: self.len,
            hash: OnceLock::new(),
        }
    }
}

fn link_len<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.len)
}

/// `true` when `(pa, ka)` outranks `(pb, kb)` in the heap order.
fn heap_gt<K: Ord>(pa: u64, ka: &K, pb: u64, kb: &K) -> bool {
    (pa, ka) > (pb, kb)
}

/// A persistent ordered map (deterministic treap behind [`Arc`] nodes).
///
/// See the [module docs](self) for the cost model.
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        link_len(&self.root)
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut it = Iter { stack: Vec::new() };
        it.push_left_spine(self.root.as_deref());
        it
    }
}

impl<K: PKey, V: Clone> PMap<K, V> {
    /// Reads the value at `key`.
    ///
    /// Accepts any borrowed form of the key (`&str` for `String` keys),
    /// so hot-path lookups never allocate.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Mutable access to the value at `key`.
    ///
    /// Copies the (shared parts of the) path to the entry and discards
    /// the digest caches along it, so the next [`PMap::root_hash`] sees
    /// the mutation.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if !self.contains_key(key) {
            // Checked up front so a miss copies nothing.
            return None;
        }
        Some(get_mut_rec(&mut self.root, key))
    }

    /// Inserts or replaces; returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut buf = Vec::with_capacity(16);
        key.encode_key(&mut buf);
        insert_rec(&mut self.root, key, value, priority(&buf))
    }

    /// Removes the entry at `key`, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if !self.contains_key(key) {
            // Checked up front so a miss copies nothing.
            return None;
        }
        Some(remove_rec(&mut self.root, key))
    }

    /// In-order iteration starting at the first key `>= start`.
    pub fn iter_from<Q>(&self, start: &Q) -> Iter<'_, K, V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut stack = Vec::new();
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if n.key.borrow() < start {
                cur = n.right.as_deref();
            } else {
                stack.push(n);
                cur = n.left.as_deref();
            }
        }
        Iter { stack }
    }
}

impl<K: PKey, V: Clone + MerkleContent> PMap<K, V> {
    /// The Merkle digest of the whole map.
    ///
    /// Node hashes are cached; after a point mutation only the copied
    /// path (O(log n) nodes) is re-hashed.  Because the tree shape is
    /// history-independent, equal content implies equal digests.
    pub fn root_hash(&self) -> Hash256 {
        link_hash(&self.root)
    }

    /// Recomputes the digest ignoring every cache (test oracle).
    pub fn root_hash_uncached(&self) -> Hash256 {
        link_hash_uncached(&self.root)
    }

    /// Produces an O(log n) inclusion (or absence) proof for `key`
    /// against [`PMap::root_hash`].
    ///
    /// Walks the search path, recording each ancestor's key, value
    /// commitment, and opposite-subtree hash; subtree hashes come from
    /// the per-node caches, so only the O(log n) entry commitments on
    /// the path are re-hashed.  A missing key yields an absence proof:
    /// the same path shape, anchored at the empty slot where the key
    /// would live.
    pub fn prove(&self, key: &K) -> InclusionProof<K> {
        let mut steps = Vec::new();
        let mut cur = &self.root;
        loop {
            let Some(n) = cur.as_deref() else {
                steps.reverse();
                return InclusionProof {
                    anchor: ProofAnchor::Absent,
                    steps,
                };
            };
            match key.cmp(&n.key) {
                Ordering::Equal => {
                    steps.reverse();
                    return InclusionProof {
                        anchor: ProofAnchor::Present {
                            left: link_hash(&n.left),
                            right: link_hash(&n.right),
                        },
                        steps,
                    };
                }
                Ordering::Less => {
                    steps.push(ProofStep {
                        key: n.key.clone(),
                        value_commitment: value_commitment(&n.value),
                        sibling: link_hash(&n.right),
                        from_left: true,
                    });
                    cur = &n.left;
                }
                Ordering::Greater => {
                    steps.push(ProofStep {
                        key: n.key.clone(),
                        value_commitment: value_commitment(&n.value),
                        sibling: link_hash(&n.left),
                        from_left: false,
                    });
                    cur = &n.right;
                }
            }
        }
    }

    /// Produces one O(log n + k) proof for every entry in `[start, end)`
    /// against [`PMap::root_hash`] — including *completeness*: a verifier
    /// that accepts the proof knows no in-range entry was omitted.
    ///
    /// The proof is the tree skeleton around the range: the two boundary
    /// search paths (out-of-range ancestors carry their value
    /// commitments, out-of-range subtrees collapse to one cached subtree
    /// hash each), with every maximal fully-in-range subtree collapsed to
    /// a bare entry count.  Verification rebuilds those subtrees from the
    /// claimed rows alone — the treap is deterministic, so a key set has
    /// exactly one shape — and accepts only if the fold matches the root.
    /// Completeness follows because a pruned subtree hash is only legal
    /// where the BST bounds prove the subtree cannot intersect the range.
    pub fn prove_range(&self, start: &K, end: &K) -> RangeProof<K> {
        RangeProof {
            root: range_node(&self.root, start, end, None, None),
        }
    }
}

/// Collapses an out-of-range subtree to its cached digest.
fn prune<K: PKey, V: Clone + MerkleContent>(link: &Link<K, V>) -> RangeNode<K> {
    match link {
        None => RangeNode::Empty,
        Some(_) => RangeNode::Pruned(link_hash(link)),
    }
}

fn range_node<K: PKey, V: Clone + MerkleContent>(
    link: &Link<K, V>,
    start: &K,
    end: &K,
    lo: Option<&K>,
    hi: Option<&K>,
) -> RangeNode<K> {
    let Some(n) = link.as_deref() else {
        return RangeNode::Empty;
    };
    // The subtree's keys all lie in the open interval (lo, hi); when that
    // interval sits inside [start, end), the verifier can rebuild the
    // whole subtree from the rows, so only the count travels.
    if lo.is_some_and(|l| l >= start) && hi.is_some_and(|h| h <= end) {
        return RangeNode::InRange {
            count: n.len as u32,
        };
    }
    if n.key < *start {
        RangeNode::Path {
            key: n.key.clone(),
            value_commitment: Some(value_commitment(&n.value)),
            left: Box::new(prune(&n.left)),
            right: Box::new(range_node(&n.right, start, end, Some(&n.key), hi)),
        }
    } else if n.key >= *end {
        RangeNode::Path {
            key: n.key.clone(),
            value_commitment: Some(value_commitment(&n.value)),
            left: Box::new(range_node(&n.left, start, end, lo, Some(&n.key))),
            right: Box::new(prune(&n.right)),
        }
    } else {
        RangeNode::Path {
            key: n.key.clone(),
            value_commitment: None,
            left: Box::new(range_node(&n.left, start, end, lo, Some(&n.key))),
            right: Box::new(range_node(&n.right, start, end, Some(&n.key), hi)),
        }
    }
}

/// Why a proof failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A presence proof came without a value (or an absence proof with
    /// one) — the proof's shape contradicts the claimed result.
    ShapeMismatch,
    /// The path's keys are inconsistent with a binary search for the
    /// target key (a malicious prover spliced paths together).
    OrderViolation,
    /// The folded hash does not match the trusted root digest.
    RootMismatch,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::ShapeMismatch => write!(f, "proof shape contradicts claimed result"),
            ProofError::OrderViolation => write!(f, "proof path violates search order"),
            ProofError::RootMismatch => write!(f, "proof does not fold to the trusted root"),
        }
    }
}

/// What the proof is anchored at: the proven entry's node, or the empty
/// slot where a missing key would live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofAnchor {
    /// The key is present; these are its node's child subtree hashes.
    Present {
        /// Subtree hash of the entry node's left child.
        left: Hash256,
        /// Subtree hash of the entry node's right child.
        right: Hash256,
    },
    /// The key is absent; the anchor is the empty link its search
    /// terminates at.
    Absent,
}

/// One ancestor on an authentication path, keyed so verifiers can check
/// search-order consistency (the value travels only as a commitment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep<K> {
    /// The ancestor's key.
    pub key: K,
    /// Commitment to the ancestor's value.
    pub value_commitment: Hash256,
    /// Subtree hash of the ancestor's child on the opposite side.
    pub sibling: Hash256,
    /// `true` when the proven subtree is the ancestor's left child.
    pub from_left: bool,
}

/// An O(log n) proof that a key is present with a given value — or
/// absent — in a [`PMap`] with a known [`PMap::root_hash`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionProof<K> {
    /// Presence anchor (child hashes) or absence marker.
    pub anchor: ProofAnchor,
    /// Path steps, leaf-to-root order.
    pub steps: Vec<ProofStep<K>>,
}

impl<K: PKey> InclusionProof<K> {
    /// Folds the proof into the root digest it implies, checking shape
    /// and search-order consistency on the way.
    ///
    /// `value_encoding` is the canonical encoding of the claimed value:
    /// `Some` claims presence, `None` claims absence.  The search-order
    /// check makes absence binding: the hash fold pins the path to real
    /// tree nodes, and the per-step ordering check proves the path is
    /// *the* BST search path for `key`, so an empty anchor means the key
    /// is nowhere in the tree.
    pub fn computed_root(
        &self,
        key: &K,
        value_encoding: Option<&[u8]>,
    ) -> Result<Hash256, ProofError> {
        let start = match (&self.anchor, value_encoding) {
            (ProofAnchor::Present { left, right }, Some(enc)) => {
                let entry = entry_commitment(&key_commitment(key), &leaf_hash(enc));
                treap_node_hash(left, &entry, right)
            }
            (ProofAnchor::Absent, None) => empty_hash(),
            _ => return Err(ProofError::ShapeMismatch),
        };
        let mut crypto_steps = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let consistent = match key.cmp(&step.key) {
                Ordering::Less => step.from_left,
                Ordering::Greater => !step.from_left,
                Ordering::Equal => false, // The target cannot be its own ancestor.
            };
            if !consistent {
                return Err(ProofError::OrderViolation);
            }
            crypto_steps.push(TreapStep {
                entry: entry_commitment(&key_commitment(&step.key), &step.value_commitment),
                sibling: step.sibling,
                from_left: step.from_left,
            });
        }
        Ok(fold_treap_path(&start, &crypto_steps))
    }

    /// Verifies the proof against a trusted root digest.
    pub fn verify(
        &self,
        root: &Hash256,
        key: &K,
        value_encoding: Option<&[u8]>,
    ) -> Result<(), ProofError> {
        if self.computed_root(key, value_encoding)? == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Whether this proof claims presence.
    pub fn claims_present(&self) -> bool {
        matches!(self.anchor, ProofAnchor::Present { .. })
    }

    /// Path length (tree depth of the proven slot).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Approximate wire size in bytes (anchor + per-step key, value
    /// commitment, sibling hash, and direction bit).
    pub fn wire_len(&self) -> usize {
        let anchor = match self.anchor {
            ProofAnchor::Present { .. } => 64,
            ProofAnchor::Absent => 1,
        };
        let mut buf = Vec::new();
        let steps: usize = self
            .steps
            .iter()
            .map(|s| {
                buf.clear();
                s.key.encode_key(&mut buf);
                buf.len() + 65
            })
            .sum();
        anchor + steps
    }
}

/// One node of a [`RangeProof`]'s tree skeleton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RangeNode<K> {
    /// An empty link.
    Empty,
    /// An out-of-range subtree, collapsed to its subtree digest.  Only
    /// legal where the surrounding BST bounds prove the subtree is
    /// disjoint from the queried range — that check is what makes
    /// omission of in-range rows impossible.
    Pruned(Hash256),
    /// One node on a boundary search path.  Out-of-range path nodes
    /// carry their value commitment; in-range path nodes take their
    /// value from the claimed rows (`value_commitment: None`).
    Path {
        /// The path node's key (in the clear, for BST-order checks).
        key: K,
        /// `Some` commitment for out-of-range nodes, `None` in range.
        value_commitment: Option<Hash256>,
        /// Left child skeleton.
        left: Box<RangeNode<K>>,
        /// Right child skeleton.
        right: Box<RangeNode<K>>,
    },
    /// A maximal subtree entirely inside `[start, end)`: its next
    /// `count` entries come from the claimed rows, and the verifier
    /// rebuilds the (unique, deterministic) treap over them.
    InRange {
        /// Number of rows this subtree consumes.
        count: u32,
    },
}

/// An O(log n + k) proof that `[start, end)` of a [`PMap`] contains
/// exactly the k claimed rows — no more, no fewer — against
/// [`PMap::root_hash`].  Built by [`PMap::prove_range`].
///
/// Cost intuition: a k-row scan proved with [`PMap::prove`] ships and
/// folds k full root-to-entry paths (k·O(log n) hashes); a `RangeProof`
/// ships the two boundary paths once and k entry commitments, so both
/// wire bytes and verify hashing drop to O(log n + k).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeProof<K> {
    /// Root of the pruned tree skeleton.
    pub root: RangeNode<K>,
}

impl<K: PKey> RangeProof<K> {
    /// Folds the proof and the claimed rows (`(key, canonical value
    /// encoding)`, ascending) into the root digest they imply.
    ///
    /// Checks, structurally: every pruned subtree is provably disjoint
    /// from `[start, end)` (completeness), every in-range skeleton node
    /// matches the next claimed row, every `InRange` subtree's rows are
    /// strictly ascending within its BST bounds, and the rows are
    /// consumed exactly.  The caller compares the result against a
    /// trusted digest (or uses [`RangeProof::verify`]).
    pub fn computed_root(
        &self,
        start: &K,
        end: &K,
        rows: &[(K, Vec<u8>)],
    ) -> Result<Hash256, ProofError> {
        let metas: Vec<(u64, Hash256)> = rows
            .iter()
            .map(|(k, enc)| {
                let mut buf = Vec::with_capacity(16);
                k.encode_key(&mut buf);
                (
                    priority(&buf),
                    entry_commitment(&key_commitment(k), &leaf_hash(enc)),
                )
            })
            .collect();
        let mut cursor = 0usize;
        let hash = fold_range_node(&self.root, start, end, None, None, rows, &metas, &mut cursor)?;
        if cursor != rows.len() {
            return Err(ProofError::ShapeMismatch);
        }
        Ok(hash)
    }

    /// Verifies the proof against a trusted root digest.
    pub fn verify(
        &self,
        root: &Hash256,
        start: &K,
        end: &K,
        rows: &[(K, Vec<u8>)],
    ) -> Result<(), ProofError> {
        if self.computed_root(start, end, rows)? == *root {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Longest boundary-path chain in the skeleton.
    pub fn depth(&self) -> usize {
        range_node_depth(&self.root)
    }

    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        range_node_wire_len(&self.root)
    }
}

#[allow(clippy::too_many_arguments)]
fn fold_range_node<'p, K: PKey>(
    node: &'p RangeNode<K>,
    start: &K,
    end: &K,
    lo: Option<&'p K>,
    hi: Option<&'p K>,
    rows: &[(K, Vec<u8>)],
    metas: &[(u64, Hash256)],
    cursor: &mut usize,
) -> Result<Hash256, ProofError> {
    match node {
        // An empty link is safe to claim anywhere: its digest is a
        // distinct domain, so a lie cannot fold to the trusted root.
        RangeNode::Empty => Ok(empty_hash()),
        RangeNode::Pruned(h) => {
            // Keys here lie in (lo, hi); the subtree may be collapsed
            // only when that interval cannot intersect [start, end).
            let disjoint = hi.is_some_and(|h2| *h2 <= *start) || lo.is_some_and(|l| *l >= *end);
            if disjoint {
                Ok(*h)
            } else {
                Err(ProofError::OrderViolation)
            }
        }
        RangeNode::InRange { count } => {
            let contained =
                lo.is_some_and(|l| *l >= *start) && hi.is_some_and(|h2| *h2 <= *end);
            if !contained {
                return Err(ProofError::OrderViolation);
            }
            let count = *count as usize;
            let slice_end = cursor.checked_add(count).ok_or(ProofError::ShapeMismatch)?;
            if count == 0 || slice_end > rows.len() {
                return Err(ProofError::ShapeMismatch);
            }
            let (l, h) = (lo.expect("checked above"), hi.expect("checked above"));
            for i in *cursor..slice_end {
                let k = &rows[i].0;
                let above_floor = if i == *cursor { *k > *l } else { *k > rows[i - 1].0 };
                if !above_floor || *k >= *h {
                    return Err(ProofError::OrderViolation);
                }
            }
            let hash = fold_in_range(rows, metas, *cursor, slice_end);
            *cursor = slice_end;
            Ok(hash)
        }
        RangeNode::Path {
            key,
            value_commitment,
            left,
            right,
        } => {
            if lo.is_some_and(|l| *key <= *l) || hi.is_some_and(|h2| *key >= *h2) {
                return Err(ProofError::OrderViolation);
            }
            // In-order: the left subtree's rows precede this node's.
            let left_hash =
                fold_range_node(left, start, end, lo, Some(key), rows, metas, cursor)?;
            let in_range = *key >= *start && *key < *end;
            let entry = match (in_range, value_commitment) {
                (true, None) => {
                    let i = *cursor;
                    if i >= rows.len() || rows[i].0 != *key {
                        return Err(ProofError::ShapeMismatch);
                    }
                    *cursor = i + 1;
                    metas[i].1
                }
                (false, Some(vc)) => entry_commitment(&key_commitment(key), vc),
                _ => return Err(ProofError::ShapeMismatch),
            };
            let right_hash =
                fold_range_node(right, start, end, Some(key), hi, rows, metas, cursor)?;
            Ok(treap_node_hash(&left_hash, &entry, &right_hash))
        }
    }
}

/// Rebuilds the digest of the unique deterministic treap over
/// `rows[a..b]` — the node with the maximal `(priority, key)` is the
/// root, recursively.  Expected O(k log k) like any treap build.
fn fold_in_range<K: PKey>(
    rows: &[(K, Vec<u8>)],
    metas: &[(u64, Hash256)],
    a: usize,
    b: usize,
) -> Hash256 {
    if a >= b {
        return empty_hash();
    }
    let mut root = a;
    for i in a + 1..b {
        if heap_gt(metas[i].0, &rows[i].0, metas[root].0, &rows[root].0) {
            root = i;
        }
    }
    treap_node_hash(
        &fold_in_range(rows, metas, a, root),
        &metas[root].1,
        &fold_in_range(rows, metas, root + 1, b),
    )
}

fn range_node_depth<K>(node: &RangeNode<K>) -> usize {
    match node {
        RangeNode::Path { left, right, .. } => {
            1 + range_node_depth(left).max(range_node_depth(right))
        }
        _ => 0,
    }
}

fn range_node_wire_len<K: PKey>(node: &RangeNode<K>) -> usize {
    match node {
        RangeNode::Empty => 1,
        RangeNode::Pruned(_) => 33,
        RangeNode::InRange { .. } => 5,
        RangeNode::Path {
            key,
            value_commitment,
            left,
            right,
        } => {
            let mut buf = Vec::with_capacity(16);
            key.encode_key(&mut buf);
            2 + buf.len()
                + if value_commitment.is_some() { 32 } else { 0 }
                + range_node_wire_len(left)
                + range_node_wire_len(right)
        }
    }
}

/// Shared-vs-owned node counts for one map (memory telemetry).
///
/// A node is *shared* when it (or any ancestor) has more than one strong
/// reference — i.e. some other clone/snapshot also reaches it; *owned*
/// nodes would be freed if this map were dropped.  Summed over a
/// snapshot ring, `shared` measures structural reuse and `owned` the
/// real retention cost of keeping history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Nodes reachable only through this handle.
    pub owned: usize,
    /// Nodes also reachable from other clones/snapshots.
    pub shared: usize,
}

impl NodeStats {
    /// Total reachable nodes.
    pub fn total(&self) -> usize {
        self.owned + self.shared
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: NodeStats) {
        self.owned += other.owned;
        self.shared += other.shared;
    }
}

fn visit_nodes_rec<K, V>(
    link: &Link<K, V>,
    ancestor_shared: bool,
    f: &mut impl FnMut(&V, bool),
) {
    let Some(n) = link else { return };
    let shared = ancestor_shared || Arc::strong_count(n) > 1;
    f(&n.value, shared);
    visit_nodes_rec(&n.left, shared, f);
    visit_nodes_rec(&n.right, shared, f);
}

impl<K, V> PMap<K, V> {
    /// Visits every node's value with whether the node is shared (its
    /// `Arc`, or any ancestor's, has more than one strong reference) —
    /// the primitive containers build nested telemetry on.
    pub fn visit_nodes(&self, ancestor_shared: bool, f: &mut impl FnMut(&V, bool)) {
        visit_nodes_rec(&self.root, ancestor_shared, f);
    }

    /// Walks the whole tree counting shared vs owned nodes (O(n) — this
    /// is telemetry, not a hot path).
    pub fn node_stats(&self) -> NodeStats {
        self.node_stats_inherited(false)
    }

    /// Like [`PMap::node_stats`], but with every node forced `shared`
    /// when the map handle itself lives inside a shared container (a
    /// table embedded in a shared database node is reachable from the
    /// other handle too, even though its own `Arc` counts are 1).
    pub fn node_stats_inherited(&self, ancestor_shared: bool) -> NodeStats {
        let mut out = NodeStats::default();
        self.visit_nodes(ancestor_shared, &mut |_, shared| {
            if shared {
                out.shared += 1;
            } else {
                out.owned += 1;
            }
        });
        out
    }
}

/// Digest of an empty subtree (distinct domain from any entry).
fn empty_hash() -> Hash256 {
    static EMPTY: OnceLock<Hash256> = OnceLock::new();
    *EMPTY.get_or_init(|| leaf_hash(b"sdr/pmap/empty"))
}

/// Commitment to a key: the leaf hash of its canonical encoding.
fn key_commitment<K: PKey>(key: &K) -> Hash256 {
    let mut buf = Vec::with_capacity(16);
    key.encode_key(&mut buf);
    leaf_hash(&buf)
}

/// Commitment to a value: the leaf hash of its canonical encoding.
fn value_commitment<V: MerkleContent>(value: &V) -> Hash256 {
    let mut buf = Vec::with_capacity(64);
    value.content_encode(&mut buf);
    leaf_hash(&buf)
}

/// An entry's commitment binds key and value commitments *separately*
/// (rather than hashing their concatenation) so authentication paths can
/// ship a path node's key in the clear — absence proofs need it to check
/// search-order consistency — while the value travels as 32 bytes.
fn entry_hash<K: PKey, V: MerkleContent>(node: &Node<K, V>) -> Hash256 {
    entry_commitment(&key_commitment(&node.key), &value_commitment(&node.value))
}

fn link_hash<K: PKey, V: Clone + MerkleContent>(link: &Link<K, V>) -> Hash256 {
    match link {
        None => empty_hash(),
        Some(n) => *n.hash.get_or_init(|| {
            node_hash(
                &node_hash(&link_hash(&n.left), &entry_hash(n)),
                &link_hash(&n.right),
            )
        }),
    }
}

fn link_hash_uncached<K: PKey, V: Clone + MerkleContent>(link: &Link<K, V>) -> Hash256 {
    match link {
        None => empty_hash(),
        Some(n) => node_hash(
            &node_hash(&link_hash_uncached(&n.left), &entry_hash(n)),
            &link_hash_uncached(&n.right),
        ),
    }
}

fn get_mut_rec<'a, K, V, Q>(link: &'a mut Link<K, V>, key: &Q) -> &'a mut V
where
    K: PKey + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let arc = link.as_mut().expect("presence checked by caller");
    let n = Arc::make_mut(arc);
    n.hash = OnceLock::new();
    match key.cmp(n.key.borrow()) {
        Ordering::Equal => &mut n.value,
        Ordering::Less => get_mut_rec(&mut n.left, key),
        Ordering::Greater => get_mut_rec(&mut n.right, key),
    }
}

fn insert_rec<K: PKey, V: Clone>(
    link: &mut Link<K, V>,
    key: K,
    value: V,
    prio: u64,
) -> Option<V> {
    let Some(existing) = link.as_ref() else {
        *link = Some(Arc::new(Node {
            key,
            value,
            prio,
            left: None,
            right: None,
            len: 1,
            hash: OnceLock::new(),
        }));
        return None;
    };
    if heap_gt(prio, &key, existing.prio, &existing.key) {
        // The new entry outranks this subtree's root, so it becomes the
        // root here; the old subtree splits around the key.  (A key
        // already present never takes this branch: its node has the same
        // composite priority, which every ancestor strictly outranks.)
        let (left, right) = split(link.take(), &key);
        let len = 1 + link_len(&left) + link_len(&right);
        *link = Some(Arc::new(Node {
            key,
            value,
            prio,
            left,
            right,
            len,
            hash: OnceLock::new(),
        }));
        return None;
    }
    let arc = link.as_mut().expect("checked above");
    let n = Arc::make_mut(arc);
    n.hash = OnceLock::new();
    let old = match key.cmp(&n.key) {
        Ordering::Equal => Some(std::mem::replace(&mut n.value, value)),
        Ordering::Less => insert_rec(&mut n.left, key, value, prio),
        Ordering::Greater => insert_rec(&mut n.right, key, value, prio),
    };
    n.len = 1 + link_len(&n.left) + link_len(&n.right);
    old
}

/// Splits a subtree into (keys `< key`, keys `>= key`).
fn split<K: PKey, V: Clone>(link: Link<K, V>, key: &K) -> (Link<K, V>, Link<K, V>) {
    let Some(mut arc) = link else {
        return (None, None);
    };
    let n = Arc::make_mut(&mut arc);
    n.hash = OnceLock::new();
    if n.key < *key {
        let (low, high) = split(n.right.take(), key);
        n.right = low;
        n.len = 1 + link_len(&n.left) + link_len(&n.right);
        (Some(arc), high)
    } else {
        let (low, high) = split(n.left.take(), key);
        n.left = high;
        n.len = 1 + link_len(&n.left) + link_len(&n.right);
        (low, Some(arc))
    }
}

/// Merges two subtrees where every key in `a` precedes every key in `b`.
fn merge<K: PKey, V: Clone>(a: Link<K, V>, b: Link<K, V>) -> Link<K, V> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(mut x), Some(mut y)) => {
            if heap_gt(x.prio, &x.key, y.prio, &y.key) {
                let n = Arc::make_mut(&mut x);
                n.hash = OnceLock::new();
                let right = n.right.take();
                n.right = merge(right, Some(y));
                n.len = 1 + link_len(&n.left) + link_len(&n.right);
                Some(x)
            } else {
                let n = Arc::make_mut(&mut y);
                n.hash = OnceLock::new();
                let left = n.left.take();
                n.left = merge(Some(x), left);
                n.len = 1 + link_len(&n.left) + link_len(&n.right);
                Some(y)
            }
        }
    }
}

fn remove_rec<K, V, Q>(link: &mut Link<K, V>, key: &Q) -> V
where
    K: PKey + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let arc = link.as_mut().expect("presence checked by caller");
    let ord = key.cmp(arc.key.borrow());
    if ord == Ordering::Equal {
        let node = link.take().expect("checked above");
        return match Arc::try_unwrap(node) {
            Ok(n) => {
                *link = merge(n.left, n.right);
                n.value
            }
            Err(shared) => {
                let value = shared.value.clone();
                *link = merge(shared.left.clone(), shared.right.clone());
                value
            }
        };
    }
    let n = Arc::make_mut(arc);
    n.hash = OnceLock::new();
    let value = if ord == Ordering::Less {
        remove_rec(&mut n.left, key)
    } else {
        remove_rec(&mut n.right, key)
    };
    n.len = 1 + link_len(&n.left) + link_len(&n.right);
    value
}

/// In-order iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left_spine(&mut self, mut cur: Option<&'a Node<K, V>>) {
        while let Some(n) = cur {
            self.stack.push(n);
            cur = n.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left_spine(n.right.as_deref());
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn map_of(keys: &[u64]) -> PMap<u64, String> {
        let mut m = PMap::new();
        for &k in keys {
            m.insert(k, format!("v{k}"));
        }
        m
    }

    #[test]
    fn insert_get_remove_len() {
        let mut m = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3, "three".to_string()), None);
        assert_eq!(m.insert(1, "one".to_string()), None);
        assert_eq!(m.insert(3, "THREE".to_string()), Some("three".to_string()));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&3), Some(&"THREE".to_string()));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.remove(&1), Some("one".to_string()));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let m = map_of(&[5, 1, 9, 3, 7, 2, 8]);
        let keys: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn iter_from_starts_at_bound() {
        let m = map_of(&[1, 3, 5, 7, 9]);
        let keys: Vec<u64> = m.iter_from(&4).map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 7, 9]);
        let keys: Vec<u64> = m.iter_from(&5).map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 7, 9]);
        assert_eq!(m.iter_from(&10).count(), 0);
    }

    #[test]
    fn clone_is_isolated_from_mutations() {
        let mut m = map_of(&[1, 2, 3]);
        let snapshot = m.clone();
        let snap_hash = snapshot.root_hash();
        m.insert(4, "v4".to_string());
        *m.get_mut(&2).expect("present") = "mutated".to_string();
        m.remove(&1);
        assert_eq!(snapshot.len(), 3);
        assert_eq!(snapshot.get(&2), Some(&"v2".to_string()));
        assert_eq!(snapshot.get(&1), Some(&"v1".to_string()));
        assert_eq!(snapshot.root_hash(), snap_hash);
        assert_ne!(m.root_hash(), snap_hash);
    }

    #[test]
    fn shape_and_digest_are_history_independent() {
        // Same final content via very different op sequences.
        let mut a: PMap<u64, String> = PMap::new();
        for k in 0..50 {
            a.insert(k, format!("v{k}"));
        }
        for k in (0..50).filter(|k: &u64| k.is_multiple_of(3)) {
            a.remove(&k);
        }
        let mut b: PMap<u64, String> = PMap::new();
        for k in (0..50).rev().filter(|k: &u64| !k.is_multiple_of(3)) {
            b.insert(k, "tmp".to_string());
        }
        for k in (0..50).filter(|k: &u64| !k.is_multiple_of(3)) {
            b.insert(k, format!("v{k}"));
        }
        assert_eq!(a.root_hash(), b.root_hash());
        assert_eq!(a.root_hash(), a.root_hash_uncached());
    }

    #[test]
    fn digest_tracks_every_mutation_kind() {
        let mut m = map_of(&[1, 2, 3]);
        let h0 = m.root_hash();
        m.insert(4, "v4".to_string());
        let h1 = m.root_hash();
        assert_ne!(h0, h1);
        *m.get_mut(&2).expect("present") = "new".to_string();
        let h2 = m.root_hash();
        assert_ne!(h1, h2);
        m.remove(&4);
        m.insert(2, "v2".to_string());
        assert_eq!(m.root_hash(), h0);
        assert_eq!(m.root_hash(), m.root_hash_uncached());
    }

    #[test]
    fn cached_digest_matches_uncached_after_shared_mutations() {
        let mut m = map_of(&(0..100).collect::<Vec<_>>());
        let _keep = m.clone(); // Force copy-on-write paths below.
        for k in [0u64, 37, 99, 50] {
            *m.get_mut(&k).expect("present") = "changed".to_string();
            assert_eq!(m.root_hash(), m.root_hash_uncached());
        }
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut m: PMap<u64, String> = PMap::new();
        let mut model: BTreeMap<u64, String> = BTreeMap::new();
        // Deterministic pseudo-random op stream.
        let mut x: u64 = 0x12345;
        for i in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 64;
            if x.is_multiple_of(3) && !model.is_empty() {
                assert_eq!(m.remove(&key), model.remove(&key));
            } else {
                let v = format!("v{i}");
                assert_eq!(m.insert(key, v.clone()), model.insert(key, v));
            }
            assert_eq!(m.len(), model.len());
        }
        let got: Vec<(u64, String)> = m.iter().map(|(k, v)| (*k, v.clone())).collect();
        let want: Vec<(u64, String)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn string_keys_order_and_prefix_scan() {
        let mut m: PMap<String, String> = PMap::new();
        for p in ["/b/1", "/a/2", "/a/1", "/c", "/a/10"] {
            m.insert(p.to_string(), String::new());
        }
        let under_a: Vec<String> = m
            .iter_from(&"/a".to_string())
            .take_while(|(k, _)| k.starts_with("/a"))
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(under_a, vec!["/a/1", "/a/10", "/a/2"]);
    }

    #[test]
    fn empty_map_digest_is_stable() {
        let a: PMap<u64, String> = PMap::new();
        let b: PMap<u64, String> = PMap::new();
        assert_eq!(a.root_hash(), b.root_hash());
        assert_ne!(a.root_hash(), map_of(&[1]).root_hash());
    }

    fn enc(v: &str) -> Vec<u8> {
        let mut out = Vec::new();
        v.to_string().content_encode(&mut out);
        out
    }

    #[test]
    fn proofs_verify_for_every_key_and_gap() {
        let m = map_of(&[2, 4, 6, 8, 10, 12, 14]);
        let root = m.root_hash();
        for k in 0..16u64 {
            let proof = m.prove(&k);
            if m.contains_key(&k) {
                assert!(proof.claims_present());
                proof.verify(&root, &k, Some(&enc(&format!("v{k}")))).unwrap();
                // The right value is bound: a different value fails.
                assert_eq!(
                    proof.verify(&root, &k, Some(&enc("wrong"))),
                    Err(ProofError::RootMismatch)
                );
                // Claiming absence of a present key fails on shape.
                assert_eq!(proof.verify(&root, &k, None), Err(ProofError::ShapeMismatch));
            } else {
                assert!(!proof.claims_present());
                proof.verify(&root, &k, None).unwrap();
                assert_eq!(
                    proof.verify(&root, &k, Some(&enc("ghost"))),
                    Err(ProofError::ShapeMismatch)
                );
            }
        }
    }

    #[test]
    fn empty_map_absence_proof() {
        let m: PMap<u64, String> = PMap::new();
        let proof = m.prove(&7);
        assert_eq!(proof.depth(), 0);
        proof.verify(&m.root_hash(), &7, None).unwrap();
    }

    #[test]
    fn single_key_proofs() {
        let m = map_of(&[5]);
        let root = m.root_hash();
        m.prove(&5).verify(&root, &5, Some(&enc("v5"))).unwrap();
        // Absence on both sides of the only key.
        m.prove(&0).verify(&root, &0, None).unwrap();
        m.prove(&u64::MAX).verify(&root, &u64::MAX, None).unwrap();
    }

    #[test]
    fn absence_proofs_at_both_ends_of_key_range() {
        let m = map_of(&(10..50).collect::<Vec<_>>());
        let root = m.root_hash();
        m.prove(&0).verify(&root, &0, None).unwrap();
        m.prove(&9).verify(&root, &9, None).unwrap();
        m.prove(&50).verify(&root, &50, None).unwrap();
        m.prove(&u64::MAX).verify(&root, &u64::MAX, None).unwrap();
    }

    #[test]
    fn proof_fails_against_digest_after_write() {
        let mut m = map_of(&[1, 2, 3]);
        let proof = m.prove(&2);
        let old_root = m.root_hash();
        m.insert(4, "v4".to_string());
        let new_root = m.root_hash();
        // Still good against the root it was made for...
        proof.verify(&old_root, &2, Some(&enc("v2"))).unwrap();
        // ...but stale against the post-write digest.
        assert_eq!(
            proof.verify(&new_root, &2, Some(&enc("v2"))),
            Err(ProofError::RootMismatch)
        );
        // A fresh proof tracks the new digest.
        m.prove(&2).verify(&new_root, &2, Some(&enc("v2"))).unwrap();
    }

    #[test]
    fn spliced_path_rejected_by_order_check() {
        let m = map_of(&(0..32).collect::<Vec<_>>());
        let root = m.root_hash();
        let mut proof = m.prove(&3);
        assert!(!proof.steps.is_empty());
        // Flip a step's direction: the fold changes AND the ordering
        // check must fire before any hashing can be confused.
        let i = proof.steps.len() - 1;
        proof.steps[i].from_left = !proof.steps[i].from_left;
        assert!(matches!(
            proof.verify(&root, &3, Some(&enc("v3"))),
            Err(ProofError::OrderViolation)
        ));
    }

    #[test]
    fn proof_depth_is_logarithmic() {
        let m = map_of(&(0..1024).collect::<Vec<_>>());
        let worst = (0..1024u64).map(|k| m.prove(&k).depth()).max().unwrap();
        // A deterministic treap over 1024 keys stays well under the
        // linear worst case; generous bound to avoid flakiness.
        assert!(worst <= 40, "worst proof depth {worst}");
        assert!(m.prove(&0).wire_len() > 0);
    }

    /// The rows a correct slave would return for `[start, end)`.
    fn rows_of(m: &PMap<u64, String>, start: u64, end: u64) -> Vec<(u64, Vec<u8>)> {
        m.iter_from(&start)
            .take_while(|(k, _)| **k < end)
            .map(|(k, v)| (*k, enc(v)))
            .collect()
    }

    #[test]
    fn range_proofs_verify_and_match_iter_from() {
        let m = map_of(&[2, 4, 6, 8, 10, 12, 14, 20, 30, 40]);
        let root = m.root_hash();
        for start in 0..=42u64 {
            for end in start..=42 {
                let rows = rows_of(&m, start, end);
                let proof = m.prove_range(&start, &end);
                proof
                    .verify(&root, &start, &end, &rows)
                    .unwrap_or_else(|e| panic!("[{start},{end}): {e}"));
            }
        }
    }

    #[test]
    fn range_proof_covers_whole_map_and_empty_map() {
        let m = map_of(&(0..100).collect::<Vec<_>>());
        let rows = rows_of(&m, 0, 1000);
        assert_eq!(rows.len(), 100);
        let proof = m.prove_range(&0, &1000);
        proof.verify(&m.root_hash(), &0, &1000, &rows).unwrap();

        let empty: PMap<u64, String> = PMap::new();
        let proof = empty.prove_range(&0, &1000);
        proof.verify(&empty.root_hash(), &0, &1000, &[]).unwrap();
    }

    #[test]
    fn range_proof_rejects_row_mutations() {
        let m = map_of(&(0..64).collect::<Vec<_>>());
        let root = m.root_hash();
        let (start, end) = (10u64, 30u64);
        let rows = rows_of(&m, start, end);
        let proof = m.prove_range(&start, &end);
        proof.verify(&root, &start, &end, &rows).unwrap();

        // Dropping any single row is caught (completeness).
        for i in 0..rows.len() {
            let mut dropped = rows.clone();
            dropped.remove(i);
            assert!(
                proof.verify(&root, &start, &end, &dropped).is_err(),
                "dropping row {i} accepted"
            );
        }
        // Inserting a phantom row is caught.
        let mut extra = rows.clone();
        extra.insert(5, (15, enc("phantom")));
        assert!(proof.verify(&root, &start, &end, &extra).is_err());
        // Reordering is caught.
        let mut swapped = rows.clone();
        swapped.swap(3, 4);
        assert!(proof.verify(&root, &start, &end, &swapped).is_err());
        // A wrong value is caught.
        let mut forged = rows.clone();
        forged[7].1 = enc("wrong");
        assert_eq!(
            proof.verify(&root, &start, &end, &forged),
            Err(ProofError::RootMismatch)
        );
    }

    /// Replaces the first `Pruned` hash found with a poisoned digest.
    fn poison_first_pruned(node: &mut RangeNode<u64>) -> bool {
        match node {
            RangeNode::Pruned(h) => {
                *h = leaf_hash(b"evil");
                true
            }
            RangeNode::Path { left, right, .. } => {
                poison_first_pruned(left) || poison_first_pruned(right)
            }
            _ => false,
        }
    }

    /// Turns the first in-range subtree into a pruned hash — the classic
    /// omission attack: hide rows behind an opaque digest.
    fn hide_first_in_range(node: &mut RangeNode<u64>) -> bool {
        match node {
            RangeNode::InRange { .. } => {
                *node = RangeNode::Pruned(leaf_hash(b"hidden"));
                true
            }
            RangeNode::Path { left, right, .. } => {
                hide_first_in_range(left) || hide_first_in_range(right)
            }
            _ => false,
        }
    }

    #[test]
    fn range_proof_rejects_skeleton_tampering() {
        let m = map_of(&(0..64).collect::<Vec<_>>());
        let root = m.root_hash();
        let (start, end) = (10u64, 30u64);
        let rows = rows_of(&m, start, end);

        let mut poisoned = m.prove_range(&start, &end);
        assert!(poison_first_pruned(&mut poisoned.root));
        assert_eq!(
            poisoned.verify(&root, &start, &end, &rows),
            Err(ProofError::RootMismatch)
        );

        // Omission: pruning an in-range subtree must fail the bounds
        // check (OrderViolation) no matter what hash it claims, even
        // when the rows are truncated to match.
        let mut hiding = m.prove_range(&start, &end);
        assert!(hide_first_in_range(&mut hiding.root));
        assert!(matches!(
            hiding.verify(&root, &start, &end, &rows),
            Err(ProofError::OrderViolation | ProofError::ShapeMismatch)
        ));
        for cut in 0..rows.len() {
            let truncated = &rows[..cut];
            assert!(
                hiding.verify(&root, &start, &end, truncated).is_err(),
                "omission with {cut} rows accepted"
            );
        }
    }

    #[test]
    fn range_proof_is_stale_after_write() {
        let mut m = map_of(&(0..32).collect::<Vec<_>>());
        let rows = rows_of(&m, 5, 15);
        let proof = m.prove_range(&5, &15);
        let old_root = m.root_hash();
        m.insert(7, "rewritten".to_string());
        proof.verify(&old_root, &5, &15, &rows).unwrap();
        assert_eq!(
            proof.verify(&m.root_hash(), &5, &15, &rows),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn range_proof_wire_is_sublinear_in_map_size() {
        let m = map_of(&(0..4096).collect::<Vec<_>>());
        let (start, end) = (1000u64, 1256u64);
        let rows = rows_of(&m, start, end);
        assert_eq!(rows.len(), 256);
        let range = m.prove_range(&start, &end);
        range.verify(&m.root_hash(), &start, &end, &rows).unwrap();

        let point_wire: usize = (start..end).map(|k| m.prove(&k).wire_len()).sum();
        assert!(
            range.wire_len() * 5 <= point_wire,
            "range proof {} bytes vs {} for 256 point proofs",
            range.wire_len(),
            point_wire
        );
        assert!(range.depth() <= 80, "boundary depth {}", range.depth());
    }

    #[test]
    fn node_stats_track_sharing() {
        let mut m = map_of(&(0..100).collect::<Vec<_>>());
        let before = m.node_stats();
        assert_eq!(before.total(), 100);
        assert_eq!(before.shared, 0);

        let snap = m.clone();
        // Everything reachable from both handles is now shared.
        assert_eq!(m.node_stats().shared, 100);
        assert_eq!(snap.node_stats().owned, 0);

        // A point write re-owns only the copied path.
        *m.get_mut(&50).expect("present") = "new".into();
        let after = m.node_stats();
        assert_eq!(after.total(), 100);
        assert!(after.owned >= 1 && after.owned <= 40, "owned {}", after.owned);
        drop(snap);
        assert_eq!(m.node_stats().shared, 0);
    }
}
