//! Filter predicates over documents.

use crate::document::Document;
use crate::pattern::Pattern;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` under the total value order.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.cmp(rhs);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    fn tag(self) -> u8 {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        }
    }
}

/// A boolean predicate tree over document fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Compare a field against a constant; a missing field compares as
    /// [`Value::Null`].
    Cmp {
        /// Field name.
        field: String,
        /// Operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Field's string value matches a glob pattern (missing/non-string
    /// fields never match).
    Like {
        /// Field name.
        field: String,
        /// Glob pattern (search semantics).
        pattern: Pattern,
    },
    /// Both children hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either child holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Child does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a field comparison.
    pub fn cmp(field: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            field: field.into(),
            op,
            value: value.into(),
        }
    }

    /// Convenience constructor for equality.
    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::cmp(field, CmpOp::Eq, value)
    }

    /// Convenience constructor for a glob match.
    pub fn like(field: impl Into<String>, pattern: Pattern) -> Self {
        Predicate::Like {
            field: field.into(),
            pattern,
        }
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against a document.
    pub fn eval(&self, doc: &Document) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { field, op, value } => {
                let lhs = doc.get(field).unwrap_or(&Value::Null);
                op.eval(lhs, value)
            }
            Predicate::Like { field, pattern } => doc
                .get(field)
                .and_then(Value::as_str)
                .is_some_and(|s| pattern.search(s)),
            Predicate::And(a, b) => a.eval(doc) && b.eval(doc),
            Predicate::Or(a, b) => a.eval(doc) || b.eval(doc),
            Predicate::Not(p) => !p.eval(doc),
        }
    }

    /// Appends a canonical encoding (for query hashing/cache keys).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Predicate::True => out.push(0),
            Predicate::Cmp { field, op, value } => {
                out.push(1);
                out.extend_from_slice(&(field.len() as u32).to_be_bytes());
                out.extend_from_slice(field.as_bytes());
                out.push(op.tag());
                value.encode_into(out);
            }
            Predicate::Like { field, pattern } => {
                out.push(2);
                out.extend_from_slice(&(field.len() as u32).to_be_bytes());
                out.extend_from_slice(field.as_bytes());
                let src = pattern.source();
                out.extend_from_slice(&(src.len() as u32).to_be_bytes());
                out.extend_from_slice(src.as_bytes());
            }
            Predicate::And(a, b) => {
                out.push(3);
                a.encode_into(out);
                b.encode_into(out);
            }
            Predicate::Or(a, b) => {
                out.push(4);
                a.encode_into(out);
                b.encode_into(out);
            }
            Predicate::Not(p) => {
                out.push(5);
                p.encode_into(out);
            }
        }
    }

    /// If this predicate (or a conjunct of it) pins `field` to a single
    /// value with `Eq`, returns that value — the executor uses this to
    /// route through a secondary index instead of scanning.
    pub fn index_hint(&self, field: &str) -> Option<&Value> {
        match self {
            Predicate::Cmp {
                field: f,
                op: CmpOp::Eq,
                value,
            } if f == field => Some(value),
            Predicate::And(a, b) => a.index_hint(field).or_else(|| b.index_hint(field)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new()
            .with("name", "gadget pro")
            .with("price", 100i64)
            .with("stock", 5i64)
    }

    #[test]
    fn comparisons() {
        let d = doc();
        assert!(Predicate::cmp("price", CmpOp::Eq, 100i64).eval(&d));
        assert!(Predicate::cmp("price", CmpOp::Lt, 101i64).eval(&d));
        assert!(Predicate::cmp("price", CmpOp::Ge, 100i64).eval(&d));
        assert!(!Predicate::cmp("price", CmpOp::Gt, 100i64).eval(&d));
        assert!(Predicate::cmp("price", CmpOp::Ne, 99i64).eval(&d));
    }

    #[test]
    fn missing_field_is_null() {
        let d = doc();
        assert!(Predicate::eq("missing", Value::Null).eval(&d));
        assert!(!Predicate::cmp("missing", CmpOp::Gt, 0i64).eval(&d));
    }

    #[test]
    fn boolean_combinators() {
        let d = doc();
        let p = Predicate::cmp("price", CmpOp::Ge, 50i64)
            .and(Predicate::cmp("stock", CmpOp::Gt, 0i64));
        assert!(p.eval(&d));
        let q = Predicate::eq("price", 1i64).or(Predicate::eq("stock", 5i64));
        assert!(q.eval(&d));
        assert!(!q.clone().not().eval(&d));
    }

    #[test]
    fn like_matches_substring_glob() {
        let d = doc();
        let p = Predicate::like("name", Pattern::compile("gadget*").unwrap());
        assert!(p.eval(&d));
        let p = Predicate::like("name", Pattern::compile("widget").unwrap());
        assert!(!p.eval(&d));
        // Non-string fields never match.
        let p = Predicate::like("price", Pattern::compile("*").unwrap());
        assert!(!p.eval(&d));
    }

    #[test]
    fn index_hint_through_conjunction() {
        let p = Predicate::eq("a", 1i64).and(Predicate::eq("b", 2i64));
        assert_eq!(p.index_hint("b"), Some(&Value::Int(2)));
        assert_eq!(p.index_hint("c"), None);
        // Disjunctions cannot use an index.
        let q = Predicate::eq("a", 1i64).or(Predicate::eq("a", 2i64));
        assert_eq!(q.index_hint("a"), None);
    }

    #[test]
    fn encoding_distinguishes_predicates() {
        fn enc(p: &Predicate) -> Vec<u8> {
            let mut v = Vec::new();
            p.encode_into(&mut v);
            v
        }
        assert_ne!(
            enc(&Predicate::eq("a", 1i64)),
            enc(&Predicate::eq("a", 2i64))
        );
        assert_ne!(
            enc(&Predicate::eq("a", 1i64)),
            enc(&Predicate::cmp("a", CmpOp::Ne, 1i64))
        );
        assert_ne!(enc(&Predicate::True), enc(&Predicate::True.not()));
    }
}
