//! Whole-state authentication: chaining a point read to the state digest.
//!
//! [`crate::pmap::InclusionProof`] authenticates one entry against one
//! map's root.  The state digest, however, commits to a *two-level*
//! structure: rows live in a table's row map, the table lives (as its
//! row-map root) in the database's table map, and the digest binds the
//! table map root, the file tree root, the table count, and the content
//! version.  The types here splice the levels together so a slave can
//! hand a client one self-contained object that verifies a `GetRow` or
//! `ReadFile` answer — presence *or* absence — directly against a
//! master-signed [`Database::state_digest`], with no pledge, audit, or
//! trusted re-execution involved.
//!
//! Everything stays O(log n): proof generation walks one search path per
//! level reusing cached subtree hashes, and verification re-hashes only
//! the path.

use crate::chunk::{ChunkId, FileManifest};
use crate::database::{digest_from_parts, Database};
use crate::document::Document;
use crate::error::StoreError;
use crate::pmap::{InclusionProof, MerkleContent, ProofError};
use crate::query::{Query, QueryResult};
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// Proof that a row is present (with given content) or absent in a table,
/// chained up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowProof {
    /// The table the row was looked up in.
    pub table: String,
    /// The primary key looked up.
    pub key: u64,
    /// Proof of the row (or its absence) within the table's row map.
    pub row: InclusionProof<u64>,
    /// The table's row count (part of the table's digest preimage).
    pub table_len: u64,
    /// Proof of the table's entry within the database's table map.
    pub table_entry: InclusionProof<String>,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
    /// Digest of the file tree (the other half of the state digest).
    pub files_digest: Hash256,
}

impl RowProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// `row` is the claimed content: `Some(doc)` claims presence with
    /// exactly that document, `None` claims absence.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        row: Option<&Document>,
    ) -> Result<(), ProofError> {
        let row_encoding = row.map(|doc| {
            let mut out = Vec::with_capacity(64);
            doc.content_encode(&mut out);
            out
        });
        let rows_root = self.row.computed_root(&self.key, row_encoding.as_deref())?;

        // The table's value in the outer map is (row count, rows root) —
        // recompute its encoding from the inner fold, so a forged
        // `table_len` or spliced row proof breaks the outer fold.
        let mut table_value = Vec::with_capacity(40);
        table_value.extend_from_slice(&self.table_len.to_be_bytes());
        table_value.extend_from_slice(rows_root.as_ref());
        let tables_root = self
            .table_entry
            .computed_root(&self.table, Some(&table_value))?;

        let digest = digest_from_parts(version, self.table_count, &tables_root, &self.files_digest);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// Proof that a file exists (with given contents) or is absent, chained
/// up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileProof {
    /// The path looked up.
    pub path: String,
    /// Proof of the file (or its absence) within the file tree.
    pub file: InclusionProof<String>,
    /// Root of the table map (the other half of the state digest).
    pub tables_root: Hash256,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
}

impl FileProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// The file tree commits to chunk *manifests*, so the verifier
    /// re-chunks the claimed contents (the chunker is deterministic) and
    /// recomputes the manifest encoding — a claim that differs in any
    /// byte produces different chunk digests and breaks the fold.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        contents: Option<&str>,
    ) -> Result<(), ProofError> {
        let encoding = contents.map(|c| {
            let manifest = FileManifest::of(c.as_bytes());
            let mut out = Vec::with_capacity(manifest.chunks.len() * 36 + 32);
            manifest.content_encode(&mut out);
            out
        });
        let files_root = self.file.computed_root(&self.path, encoding.as_deref())?;
        let digest = digest_from_parts(version, self.table_count, &self.tables_root, &files_root);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// Header proof of a streamed (`ReadFileRange`) read: binds a file's
/// chunk manifest to the state digest so each subsequent chunk verifies
/// alone against its 32-byte manifest entry.
///
/// The verification chain is chunk bytes → [`ChunkId`] (chunk
/// commitment) → manifest encoding → file-tree leaf → files root →
/// digest preimage → master-signed digest stamp.  A client therefore
/// never buffers the file: it checks this header once (O(log n)
/// hashes), then hashes each arriving chunk and compares against the
/// manifest — a corrupted chunk is rejected the moment it arrives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamProof {
    /// The path streamed.
    pub path: String,
    /// The file's chunk manifest (`None` claims the file is absent).
    pub manifest: Option<FileManifest>,
    /// Proof of the manifest (or the path's absence) within the file
    /// tree.
    pub file: InclusionProof<String>,
    /// Root of the table map (the other half of the state digest).
    pub tables_root: Hash256,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
}

impl StreamProof {
    /// Verifies the manifest against a trusted state digest for
    /// `version`.  After this, [`StreamProof::verify_chunk`] needs no
    /// further trust in the slave.
    pub fn verify_header(
        &self,
        expected_digest: &Hash256,
        version: u64,
    ) -> Result<(), ProofError> {
        let encoding = self.manifest.as_ref().map(|m| {
            let mut out = Vec::with_capacity(m.chunks.len() * 36 + 32);
            m.content_encode(&mut out);
            out
        });
        let files_root = self.file.computed_root(&self.path, encoding.as_deref())?;
        let digest = digest_from_parts(version, self.table_count, &self.tables_root, &files_root);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Verifies one streamed chunk (by manifest index) against the
    /// already-verified manifest: length and chunk commitment must both
    /// match.
    pub fn verify_chunk(&self, index: usize, data: &[u8]) -> Result<(), ProofError> {
        let entry = self
            .manifest
            .as_ref()
            .and_then(|m| m.chunks.get(index))
            .ok_or(ProofError::ShapeMismatch)?;
        if data.len() != entry.len as usize || ChunkId::of(data) != entry.id {
            return Err(ProofError::RootMismatch);
        }
        Ok(())
    }

    /// Path length of the header fold (hash work the verifier does).
    pub fn depth(&self) -> usize {
        self.file.depth()
    }

    /// Approximate wire size of the header in bytes.
    pub fn wire_len(&self) -> usize {
        let manifest = self
            .manifest
            .as_ref()
            .map_or(1, |m| 13 + m.chunks.len() * 36);
        self.file.wire_len() + self.path.len() + 36 + manifest
    }
}

/// A self-contained proof for one static point read.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StateProof {
    /// Proof for a `GetRow` answer.
    Row(RowProof),
    /// Proof for a `ReadFile` answer.
    File(FileProof),
}

impl StateProof {
    /// Verifies that `result` is the authentic answer to `query` at the
    /// state committed to by `expected_digest`/`version`.
    ///
    /// Checks three things: the proof is *about* the query (same table,
    /// key, or path), the result has the shape the query produces, and
    /// the hash path folds to the trusted digest.
    pub fn verify_result(
        &self,
        expected_digest: &Hash256,
        version: u64,
        query: &Query,
        result: &QueryResult,
    ) -> Result<(), ProofError> {
        match (self, query, result) {
            (
                StateProof::Row(proof),
                Query::GetRow { table, key },
                QueryResult::Rows(rows),
            ) => {
                if proof.table != *table || proof.key != *key || rows.len() > 1 {
                    return Err(ProofError::ShapeMismatch);
                }
                let row = match rows.first() {
                    Some((k, doc)) if *k == *key => Some(doc),
                    Some(_) => return Err(ProofError::ShapeMismatch),
                    None => None,
                };
                proof.verify(expected_digest, version, row)
            }
            (StateProof::File(proof), Query::ReadFile { path }, QueryResult::Text(text)) => {
                if proof.path != *path {
                    return Err(ProofError::ShapeMismatch);
                }
                proof.verify(expected_digest, version, text.as_deref())
            }
            _ => Err(ProofError::ShapeMismatch),
        }
    }

    /// Total path length across both levels (hash work the verifier does).
    pub fn depth(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.depth() + p.table_entry.depth(),
            StateProof::File(p) => p.file.depth(),
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.wire_len() + p.table_entry.wire_len() + 44 + 32,
            StateProof::File(p) => p.file.wire_len() + p.path.len() + 36,
        }
    }
}

impl Database {
    /// Produces a [`RowProof`] for `(table, key)` against the current
    /// [`Database::state_digest`].  Errors when the table itself does
    /// not exist (a missing *row* yields an absence proof instead).
    pub fn prove_row(&self, table: &str, key: u64) -> Result<StateProof, StoreError> {
        let t = self.table(table)?;
        Ok(StateProof::Row(RowProof {
            table: table.to_string(),
            key,
            row: t.prove_row(key),
            table_len: t.len() as u64,
            table_entry: self.prove_table_entry(table),
            table_count: self.table_count() as u32,
            files_digest: self.fs().files_digest(),
        }))
    }

    /// Produces a [`FileProof`] for `path` (presence or absence) against
    /// the current [`Database::state_digest`].
    pub fn prove_file(&self, path: &str) -> StateProof {
        StateProof::File(FileProof {
            path: path.to_string(),
            file: self.fs().prove_file(path),
            tables_root: self.tables_root(),
            table_count: self.table_count() as u32,
        })
    }

    /// Produces a [`StreamProof`] header for `path` (presence or
    /// absence) against the current [`Database::state_digest`]: the
    /// anchor of a chunk-by-chunk streamed read.
    pub fn prove_stream(&self, path: &str) -> StreamProof {
        StreamProof {
            path: path.to_string(),
            manifest: self.fs().manifest(path).cloned(),
            file: self.fs().prove_file(path),
            tables_root: self.tables_root(),
            table_count: self.table_count() as u32,
        }
    }

    /// Proof machinery for an arbitrary static point read; `None` for
    /// query shapes that need pledge+audit (computed queries — and
    /// `ReadFileRange`, which streams with its own [`StreamProof`]).
    pub fn prove_query(&self, query: &Query) -> Option<Result<StateProof, StoreError>> {
        match query {
            Query::GetRow { table, key } => Some(self.prove_row(table, *key)),
            Query::ReadFile { path } => Some(Ok(self.prove_file(path))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 2,
                doc: Document::new().with("v", 20i64),
            },
            UpdateOp::WriteFile {
                path: "/readme".into(),
                contents: "hello world\n".into(),
            },
        ])
        .unwrap();
        db
    }

    #[test]
    fn row_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();

        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        db.prove_row("t", 1)
            .unwrap()
            .verify_result(&digest, v, &q, &result)
            .unwrap();

        // Absent row: empty result + absence proof.
        let q99 = Query::GetRow {
            table: "t".into(),
            key: 99,
        };
        db.prove_row("t", 99)
            .unwrap()
            .verify_result(&digest, v, &q99, &QueryResult::Rows(vec![]))
            .unwrap();
    }

    #[test]
    fn file_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        db.prove_file("/readme")
            .verify_result(
                &digest,
                v,
                &q,
                &QueryResult::Text(Some("hello world\n".into())),
            )
            .unwrap();
        let qm = Query::ReadFile {
            path: "/missing".into(),
        };
        db.prove_file("/missing")
            .verify_result(&digest, v, &qm, &QueryResult::Text(None))
            .unwrap();
    }

    #[test]
    fn forged_answers_rejected() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let proof = db.prove_row("t", 1).unwrap();

        // Wrong document content.
        let forged = QueryResult::Rows(vec![(1, Document::new().with("v", 666i64))]);
        assert_eq!(
            proof.verify_result(&digest, v, &q, &forged),
            Err(ProofError::RootMismatch)
        );
        // Claiming the row is absent.
        assert_eq!(
            proof.verify_result(&digest, v, &q, &QueryResult::Rows(vec![])),
            Err(ProofError::ShapeMismatch)
        );
        // A proof for a different key cannot answer this query.
        let other = db.prove_row("t", 2).unwrap();
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(
            other.verify_result(&digest, v, &q, &result),
            Err(ProofError::ShapeMismatch)
        );
        // Wrong version (digest binds it).
        assert_eq!(
            proof.verify_result(&digest, v + 1, &q, &result),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn proof_goes_stale_after_write() {
        let mut db = db();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        let proof = db.prove_file("/readme");
        let old_digest = db.state_digest();
        let old_v = db.version();
        db.apply_write(&[UpdateOp::AppendFile {
            path: "/readme".into(),
            contents: "more\n".into(),
        }])
        .unwrap();
        let result = QueryResult::Text(Some("hello world\n".into()));
        proof
            .verify_result(&old_digest, old_v, &q, &result)
            .unwrap();
        assert!(proof
            .verify_result(&db.state_digest(), db.version(), &q, &result)
            .is_err());
    }

    fn stream_contents(lines: usize) -> String {
        (0..lines).map(|l| format!("entry {l:05} streamed payload\n")).collect()
    }

    #[test]
    fn stream_proof_verifies_chunk_by_chunk() {
        let mut db = db();
        let contents = stream_contents(3_000);
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/stream".into(),
            contents: contents.clone(),
        }])
        .unwrap();
        let digest = db.state_digest();
        let v = db.version();

        let proof = db.prove_stream("/stream");
        proof.verify_header(&digest, v).unwrap();
        let manifest = proof.manifest.clone().unwrap();
        assert!(manifest.chunks.len() > 1, "fixture should be multi-chunk");

        // Verify and assemble chunk by chunk — never holding more than
        // one chunk beyond the output buffer.
        let mut assembled = Vec::new();
        for (i, entry) in manifest.chunks.iter().enumerate() {
            let data = db.fs().chunk_bytes(&entry.id).unwrap().to_vec();
            proof.verify_chunk(i, &data).unwrap();
            assembled.extend_from_slice(&data);
        }
        assert_eq!(String::from_utf8(assembled).unwrap(), contents);
    }

    #[test]
    fn stream_proof_rejects_corruption_at_the_corrupted_chunk() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/stream".into(),
            contents: stream_contents(3_000),
        }])
        .unwrap();
        let proof = db.prove_stream("/stream");
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        let manifest = proof.manifest.as_ref().unwrap();

        let good0 = db.fs().chunk_bytes(&manifest.chunks[0].id).unwrap().to_vec();
        let mut bad1 = db.fs().chunk_bytes(&manifest.chunks[1].id).unwrap().to_vec();
        bad1[7] ^= 0x01;

        proof.verify_chunk(0, &good0).unwrap();
        assert_eq!(proof.verify_chunk(1, &bad1), Err(ProofError::RootMismatch));
        // Wrong length alone is also caught.
        assert_eq!(proof.verify_chunk(0, &good0[..good0.len() - 1]), Err(ProofError::RootMismatch));
        // An index past the manifest is a shape error.
        assert_eq!(
            proof.verify_chunk(manifest.chunks.len(), b"x"),
            Err(ProofError::ShapeMismatch)
        );
        // And a tampered header (extra manifest entry) breaks the fold.
        let mut forged = proof.clone();
        let extra = forged.manifest.as_ref().unwrap().chunks[0];
        forged.manifest.as_mut().unwrap().chunks.push(extra);
        assert!(forged.verify_header(&db.state_digest(), db.version()).is_err());
    }

    #[test]
    fn stream_proof_absence_for_missing_path() {
        let db = db();
        let proof = db.prove_stream("/missing");
        assert!(proof.manifest.is_none());
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        // An absent file has no chunks to verify.
        assert_eq!(proof.verify_chunk(0, b"x"), Err(ProofError::ShapeMismatch));
    }

    #[test]
    fn delete_then_absence_proof() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/gone".into(),
            contents: stream_contents(500),
        }])
        .unwrap();
        let live = db.prove_stream("/gone");
        live.verify_header(&db.state_digest(), db.version()).unwrap();

        db.apply_write(&[UpdateOp::DeleteFile { path: "/gone".into() }]).unwrap();
        // The old presence header is stale now...
        assert!(live.verify_header(&db.state_digest(), db.version()).is_err());
        // ...and a fresh proof shows verifiable absence, on the stream
        // path and the point-read path alike.
        let gone = db.prove_stream("/gone");
        assert!(gone.manifest.is_none());
        gone.verify_header(&db.state_digest(), db.version()).unwrap();
        let q = Query::ReadFile { path: "/gone".into() };
        db.prove_file("/gone")
            .verify_result(&db.state_digest(), db.version(), &q, &QueryResult::Text(None))
            .unwrap();
    }

    #[test]
    fn single_chunk_file_proofs() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/tiny".into(),
            contents: "just one chunk\n".into(),
        }])
        .unwrap();
        let proof = db.prove_stream("/tiny");
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        let manifest = proof.manifest.as_ref().unwrap();
        assert_eq!(manifest.chunks.len(), 1);
        proof
            .verify_chunk(0, db.fs().chunk_bytes(&manifest.chunks[0].id).unwrap())
            .unwrap();
        // The whole-file point proof agrees.
        let q = Query::ReadFile { path: "/tiny".into() };
        db.prove_file("/tiny")
            .verify_result(
                &db.state_digest(),
                db.version(),
                &q,
                &QueryResult::Text(Some("just one chunk\n".into())),
            )
            .unwrap();
    }

    #[test]
    fn missing_table_is_an_error_not_a_proof() {
        let db = db();
        assert!(db.prove_row("nope", 1).is_err());
        assert!(db
            .prove_query(&Query::GetRow {
                table: "nope".into(),
                key: 1
            })
            .unwrap()
            .is_err());
        assert!(db
            .prove_query(&Query::ListFiles { prefix: "/".into() })
            .is_none());
    }
}
