//! Whole-state authentication: chaining a point read to the state digest.
//!
//! [`crate::pmap::InclusionProof`] authenticates one entry against one
//! map's root.  The state digest, however, commits to a *two-level*
//! structure: rows live in a table's row map, the table lives (as its
//! row-map root) in the database's table map, and the digest binds the
//! table map root, the file tree root, the table count, and the content
//! version.  The types here splice the levels together so a slave can
//! hand a client one self-contained object that verifies a `GetRow` or
//! `ReadFile` answer — presence *or* absence — directly against a
//! master-signed [`Database::state_digest`], with no pledge, audit, or
//! trusted re-execution involved.
//!
//! Everything stays O(log n): proof generation walks one search path per
//! level reusing cached subtree hashes, and verification re-hashes only
//! the path.

use crate::database::{digest_from_parts, Database};
use crate::document::Document;
use crate::error::StoreError;
use crate::pmap::{InclusionProof, MerkleContent, ProofError};
use crate::query::{Query, QueryResult};
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// Proof that a row is present (with given content) or absent in a table,
/// chained up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowProof {
    /// The table the row was looked up in.
    pub table: String,
    /// The primary key looked up.
    pub key: u64,
    /// Proof of the row (or its absence) within the table's row map.
    pub row: InclusionProof<u64>,
    /// The table's row count (part of the table's digest preimage).
    pub table_len: u64,
    /// Proof of the table's entry within the database's table map.
    pub table_entry: InclusionProof<String>,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
    /// Digest of the file tree (the other half of the state digest).
    pub files_digest: Hash256,
}

impl RowProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// `row` is the claimed content: `Some(doc)` claims presence with
    /// exactly that document, `None` claims absence.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        row: Option<&Document>,
    ) -> Result<(), ProofError> {
        let row_encoding = row.map(|doc| {
            let mut out = Vec::with_capacity(64);
            doc.content_encode(&mut out);
            out
        });
        let rows_root = self.row.computed_root(&self.key, row_encoding.as_deref())?;

        // The table's value in the outer map is (row count, rows root) —
        // recompute its encoding from the inner fold, so a forged
        // `table_len` or spliced row proof breaks the outer fold.
        let mut table_value = Vec::with_capacity(40);
        table_value.extend_from_slice(&self.table_len.to_be_bytes());
        table_value.extend_from_slice(rows_root.as_ref());
        let tables_root = self
            .table_entry
            .computed_root(&self.table, Some(&table_value))?;

        let digest = digest_from_parts(version, self.table_count, &tables_root, &self.files_digest);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// Proof that a file exists (with given contents) or is absent, chained
/// up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileProof {
    /// The path looked up.
    pub path: String,
    /// Proof of the file (or its absence) within the file tree.
    pub file: InclusionProof<String>,
    /// Root of the table map (the other half of the state digest).
    pub tables_root: Hash256,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
}

impl FileProof {
    /// Verifies the proof against a trusted state digest for `version`.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        contents: Option<&str>,
    ) -> Result<(), ProofError> {
        let encoding = contents.map(|c| {
            let mut out = Vec::with_capacity(c.len() + 8);
            c.to_string().content_encode(&mut out);
            out
        });
        let files_root = self.file.computed_root(&self.path, encoding.as_deref())?;
        let digest = digest_from_parts(version, self.table_count, &self.tables_root, &files_root);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// A self-contained proof for one static point read.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StateProof {
    /// Proof for a `GetRow` answer.
    Row(RowProof),
    /// Proof for a `ReadFile` answer.
    File(FileProof),
}

impl StateProof {
    /// Verifies that `result` is the authentic answer to `query` at the
    /// state committed to by `expected_digest`/`version`.
    ///
    /// Checks three things: the proof is *about* the query (same table,
    /// key, or path), the result has the shape the query produces, and
    /// the hash path folds to the trusted digest.
    pub fn verify_result(
        &self,
        expected_digest: &Hash256,
        version: u64,
        query: &Query,
        result: &QueryResult,
    ) -> Result<(), ProofError> {
        match (self, query, result) {
            (
                StateProof::Row(proof),
                Query::GetRow { table, key },
                QueryResult::Rows(rows),
            ) => {
                if proof.table != *table || proof.key != *key || rows.len() > 1 {
                    return Err(ProofError::ShapeMismatch);
                }
                let row = match rows.first() {
                    Some((k, doc)) if *k == *key => Some(doc),
                    Some(_) => return Err(ProofError::ShapeMismatch),
                    None => None,
                };
                proof.verify(expected_digest, version, row)
            }
            (StateProof::File(proof), Query::ReadFile { path }, QueryResult::Text(text)) => {
                if proof.path != *path {
                    return Err(ProofError::ShapeMismatch);
                }
                proof.verify(expected_digest, version, text.as_deref())
            }
            _ => Err(ProofError::ShapeMismatch),
        }
    }

    /// Total path length across both levels (hash work the verifier does).
    pub fn depth(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.depth() + p.table_entry.depth(),
            StateProof::File(p) => p.file.depth(),
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.wire_len() + p.table_entry.wire_len() + 44 + 32,
            StateProof::File(p) => p.file.wire_len() + p.path.len() + 36,
        }
    }
}

impl Database {
    /// Produces a [`RowProof`] for `(table, key)` against the current
    /// [`Database::state_digest`].  Errors when the table itself does
    /// not exist (a missing *row* yields an absence proof instead).
    pub fn prove_row(&self, table: &str, key: u64) -> Result<StateProof, StoreError> {
        let t = self.table(table)?;
        Ok(StateProof::Row(RowProof {
            table: table.to_string(),
            key,
            row: t.prove_row(key),
            table_len: t.len() as u64,
            table_entry: self.prove_table_entry(table),
            table_count: self.table_count() as u32,
            files_digest: self.fs().files_digest(),
        }))
    }

    /// Produces a [`FileProof`] for `path` (presence or absence) against
    /// the current [`Database::state_digest`].
    pub fn prove_file(&self, path: &str) -> StateProof {
        StateProof::File(FileProof {
            path: path.to_string(),
            file: self.fs().prove_file(path),
            tables_root: self.tables_root(),
            table_count: self.table_count() as u32,
        })
    }

    /// Proof machinery for an arbitrary static point read; `None` for
    /// query shapes that need pledge+audit (computed queries).
    pub fn prove_query(&self, query: &Query) -> Option<Result<StateProof, StoreError>> {
        match query {
            Query::GetRow { table, key } => Some(self.prove_row(table, *key)),
            Query::ReadFile { path } => Some(Ok(self.prove_file(path))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 2,
                doc: Document::new().with("v", 20i64),
            },
            UpdateOp::WriteFile {
                path: "/readme".into(),
                contents: "hello world\n".into(),
            },
        ])
        .unwrap();
        db
    }

    #[test]
    fn row_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();

        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        db.prove_row("t", 1)
            .unwrap()
            .verify_result(&digest, v, &q, &result)
            .unwrap();

        // Absent row: empty result + absence proof.
        let q99 = Query::GetRow {
            table: "t".into(),
            key: 99,
        };
        db.prove_row("t", 99)
            .unwrap()
            .verify_result(&digest, v, &q99, &QueryResult::Rows(vec![]))
            .unwrap();
    }

    #[test]
    fn file_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        db.prove_file("/readme")
            .verify_result(
                &digest,
                v,
                &q,
                &QueryResult::Text(Some("hello world\n".into())),
            )
            .unwrap();
        let qm = Query::ReadFile {
            path: "/missing".into(),
        };
        db.prove_file("/missing")
            .verify_result(&digest, v, &qm, &QueryResult::Text(None))
            .unwrap();
    }

    #[test]
    fn forged_answers_rejected() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let proof = db.prove_row("t", 1).unwrap();

        // Wrong document content.
        let forged = QueryResult::Rows(vec![(1, Document::new().with("v", 666i64))]);
        assert_eq!(
            proof.verify_result(&digest, v, &q, &forged),
            Err(ProofError::RootMismatch)
        );
        // Claiming the row is absent.
        assert_eq!(
            proof.verify_result(&digest, v, &q, &QueryResult::Rows(vec![])),
            Err(ProofError::ShapeMismatch)
        );
        // A proof for a different key cannot answer this query.
        let other = db.prove_row("t", 2).unwrap();
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(
            other.verify_result(&digest, v, &q, &result),
            Err(ProofError::ShapeMismatch)
        );
        // Wrong version (digest binds it).
        assert_eq!(
            proof.verify_result(&digest, v + 1, &q, &result),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn proof_goes_stale_after_write() {
        let mut db = db();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        let proof = db.prove_file("/readme");
        let old_digest = db.state_digest();
        let old_v = db.version();
        db.apply_write(&[UpdateOp::AppendFile {
            path: "/readme".into(),
            contents: "more\n".into(),
        }])
        .unwrap();
        let result = QueryResult::Text(Some("hello world\n".into()));
        proof
            .verify_result(&old_digest, old_v, &q, &result)
            .unwrap();
        assert!(proof
            .verify_result(&db.state_digest(), db.version(), &q, &result)
            .is_err());
    }

    #[test]
    fn missing_table_is_an_error_not_a_proof() {
        let db = db();
        assert!(db.prove_row("nope", 1).is_err());
        assert!(db
            .prove_query(&Query::GetRow {
                table: "nope".into(),
                key: 1
            })
            .unwrap()
            .is_err());
        assert!(db
            .prove_query(&Query::ListFiles { prefix: "/".into() })
            .is_none());
    }
}
