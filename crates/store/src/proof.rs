//! Whole-state authentication: chaining a point read to the state digest.
//!
//! [`crate::pmap::InclusionProof`] authenticates one entry against one
//! map's root.  The state digest, however, commits to a *two-level*
//! structure: rows live in a table's row map, the table lives (as its
//! row-map root) in the database's table map, and the digest binds the
//! table map root, the file tree root, the table count, and the content
//! version.  The types here splice the levels together so a slave can
//! hand a client one self-contained object that verifies a `GetRow` or
//! `ReadFile` answer — presence *or* absence — directly against a
//! master-signed [`Database::state_digest`], with no pledge, audit, or
//! trusted re-execution involved.
//!
//! Everything stays O(log n): proof generation walks one search path per
//! level reusing cached subtree hashes, and verification re-hashes only
//! the path.

use crate::chunk::{ChunkId, FileManifest, ManifestSlice};
use crate::database::{digest_from_parts, Database};
use crate::document::Document;
use crate::error::StoreError;
use crate::pmap::{InclusionProof, MerkleContent, ProofError, RangeProof};
use crate::query::{Query, QueryResult};
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// Proof that a row is present (with given content) or absent in a table,
/// chained up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowProof {
    /// The table the row was looked up in.
    pub table: String,
    /// The primary key looked up.
    pub key: u64,
    /// Proof of the row (or its absence) within the table's row map.
    pub row: InclusionProof<u64>,
    /// The table's row count (part of the table's digest preimage).
    pub table_len: u64,
    /// Proof of the table's entry within the database's table map.
    pub table_entry: InclusionProof<String>,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
    /// Digest of the file tree (the other half of the state digest).
    pub files_digest: Hash256,
}

impl RowProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// `row` is the claimed content: `Some(doc)` claims presence with
    /// exactly that document, `None` claims absence.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        row: Option<&Document>,
    ) -> Result<(), ProofError> {
        let row_encoding = row.map(|doc| {
            let mut out = Vec::with_capacity(64);
            doc.content_encode(&mut out);
            out
        });
        let rows_root = self.row.computed_root(&self.key, row_encoding.as_deref())?;

        // The table's value in the outer map is (row count, rows root) —
        // recompute its encoding from the inner fold, so a forged
        // `table_len` or spliced row proof breaks the outer fold.
        let mut table_value = Vec::with_capacity(40);
        table_value.extend_from_slice(&self.table_len.to_be_bytes());
        table_value.extend_from_slice(rows_root.as_ref());
        let tables_root = self
            .table_entry
            .computed_root(&self.table, Some(&table_value))?;

        let digest = digest_from_parts(version, self.table_count, &tables_root, &self.files_digest);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// Proof that a file exists (with given contents) or is absent, chained
/// up to the database's state digest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileProof {
    /// The path looked up.
    pub path: String,
    /// Proof of the file (or its absence) within the file tree.
    pub file: InclusionProof<String>,
    /// Root of the table map (the other half of the state digest).
    pub tables_root: Hash256,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
}

impl FileProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// The file tree commits to chunk *manifests*, so the verifier
    /// re-chunks the claimed contents (the chunker is deterministic) and
    /// recomputes the manifest encoding — a claim that differs in any
    /// byte produces different chunk digests and breaks the fold.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        contents: Option<&str>,
    ) -> Result<(), ProofError> {
        let encoding = contents.map(|c| {
            let manifest = FileManifest::of(c.as_bytes());
            let mut out = Vec::with_capacity(manifest.chunks.len() * 36 + 32);
            manifest.content_encode(&mut out);
            out
        });
        let files_root = self.file.computed_root(&self.path, encoding.as_deref())?;
        let digest = digest_from_parts(version, self.table_count, &self.tables_root, &files_root);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// Header proof of a streamed (`ReadFileRange`) read: binds the *slice*
/// of a file's chunk table covering the requested byte range to the
/// state digest, so each subsequent chunk verifies alone against its
/// 32-byte manifest entry.
///
/// The verification chain is chunk bytes → [`ChunkId`] (chunk
/// commitment) → slice entry → chunk-table Merkle root → manifest
/// encoding → file-tree leaf → files root → digest preimage →
/// master-signed digest stamp.  The header carries only the entries the
/// read touches plus an O(log chunks) range proof — a 4 KiB read of a
/// huge file no longer ships the whole chunk table — and a client never
/// buffers the file: it checks this header once, then hashes each
/// arriving chunk as it lands; a corrupted chunk is rejected the moment
/// it arrives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamProof {
    /// The path streamed.
    pub path: String,
    /// The chunk-table slice covering the requested byte range
    /// (`None` claims the file is absent).
    pub slice: Option<ManifestSlice>,
    /// Proof of the manifest (or the path's absence) within the file
    /// tree.
    pub file: InclusionProof<String>,
    /// Root of the table map (the other half of the state digest).
    pub tables_root: Hash256,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
}

impl StreamProof {
    /// Verifies the slice against a trusted state digest for `version`:
    /// the slice's internal range proof first, then the rebuilt manifest
    /// encoding up the file tree.  After this,
    /// [`StreamProof::verify_chunk`] needs no further trust in the
    /// slave.
    pub fn verify_header(
        &self,
        expected_digest: &Hash256,
        version: u64,
    ) -> Result<(), ProofError> {
        let encoding = match &self.slice {
            Some(slice) => Some(slice.verified_encoding()?),
            None => None,
        };
        let files_root = self.file.computed_root(&self.path, encoding.as_deref())?;
        let digest = digest_from_parts(version, self.table_count, &self.tables_root, &files_root);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }

    /// Verifies one streamed chunk (by absolute chunk index) against the
    /// already-verified slice: length and chunk commitment must both
    /// match.
    pub fn verify_chunk(&self, index: usize, data: &[u8]) -> Result<(), ProofError> {
        let entry = self
            .slice
            .as_ref()
            .and_then(|s| s.entry(index))
            .ok_or(ProofError::ShapeMismatch)?;
        if data.len() != entry.len as usize || ChunkId::of(data) != entry.id {
            return Err(ProofError::RootMismatch);
        }
        Ok(())
    }

    /// Path length of the header fold (hash work the verifier does).
    pub fn depth(&self) -> usize {
        self.file.depth()
    }

    /// Approximate wire size of the header in bytes.
    pub fn wire_len(&self) -> usize {
        let slice = self.slice.as_ref().map_or(1, |s| s.wire_len());
        self.file.wire_len() + self.path.len() + 36 + slice
    }
}

/// Proof that the rows with keys in `[start, end)` of a table are
/// *exactly* the k claimed rows, chained up to the database's state
/// digest — the authenticated answer to a [`Query::ScanRange`].
///
/// One [`RangeProof`] covers the whole scan: O(log n + k) hash work and
/// wire bytes where k point proofs would cost k·O(log n) of each.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RangeScanProof {
    /// The table scanned.
    pub table: String,
    /// Inclusive lower bound of the scan.
    pub start: u64,
    /// Exclusive upper bound of the scan.
    pub end: u64,
    /// Range proof of the rows within the table's row map.
    pub range: RangeProof<u64>,
    /// The table's row count (part of the table's digest preimage).
    pub table_len: u64,
    /// Proof of the table's entry within the database's table map.
    pub table_entry: InclusionProof<String>,
    /// Number of tables (part of the state-digest preimage).
    pub table_count: u32,
    /// Digest of the file tree (the other half of the state digest).
    pub files_digest: Hash256,
}

impl RangeScanProof {
    /// Verifies the proof against a trusted state digest for `version`.
    ///
    /// `rows` is the claimed answer, ascending by key.  Acceptance means
    /// the table holds exactly these rows in `[start, end)` — none
    /// forged, none omitted.
    pub fn verify(
        &self,
        expected_digest: &Hash256,
        version: u64,
        rows: &[(u64, Document)],
    ) -> Result<(), ProofError> {
        let encoded: Vec<(u64, Vec<u8>)> = rows
            .iter()
            .map(|(k, doc)| {
                let mut out = Vec::with_capacity(64);
                doc.content_encode(&mut out);
                (*k, out)
            })
            .collect();
        let rows_root = self.range.computed_root(&self.start, &self.end, &encoded)?;

        let mut table_value = Vec::with_capacity(40);
        table_value.extend_from_slice(&self.table_len.to_be_bytes());
        table_value.extend_from_slice(rows_root.as_ref());
        let tables_root = self
            .table_entry
            .computed_root(&self.table, Some(&table_value))?;

        let digest = digest_from_parts(version, self.table_count, &tables_root, &self.files_digest);
        if digest == *expected_digest {
            Ok(())
        } else {
            Err(ProofError::RootMismatch)
        }
    }
}

/// A self-contained proof for one static read.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StateProof {
    /// Proof for a `GetRow` answer.
    Row(RowProof),
    /// Proof for a `ReadFile` answer.
    File(FileProof),
    /// Proof for a `ScanRange` answer (k rows, one proof).
    Range(RangeScanProof),
}

impl StateProof {
    /// Verifies that `result` is the authentic answer to `query` at the
    /// state committed to by `expected_digest`/`version`.
    ///
    /// Checks three things: the proof is *about* the query (same table,
    /// key, or path), the result has the shape the query produces, and
    /// the hash path folds to the trusted digest.
    pub fn verify_result(
        &self,
        expected_digest: &Hash256,
        version: u64,
        query: &Query,
        result: &QueryResult,
    ) -> Result<(), ProofError> {
        match (self, query, result) {
            (
                StateProof::Row(proof),
                Query::GetRow { table, key },
                QueryResult::Rows(rows),
            ) => {
                if proof.table != *table || proof.key != *key || rows.len() > 1 {
                    return Err(ProofError::ShapeMismatch);
                }
                let row = match rows.first() {
                    Some((k, doc)) if *k == *key => Some(doc),
                    Some(_) => return Err(ProofError::ShapeMismatch),
                    None => None,
                };
                proof.verify(expected_digest, version, row)
            }
            (StateProof::File(proof), Query::ReadFile { path }, QueryResult::Text(text)) => {
                if proof.path != *path {
                    return Err(ProofError::ShapeMismatch);
                }
                proof.verify(expected_digest, version, text.as_deref())
            }
            (
                StateProof::Range(proof),
                Query::ScanRange { table, start, end },
                QueryResult::Rows(rows),
            ) => {
                if proof.table != *table || proof.start != *start || proof.end != *end {
                    return Err(ProofError::ShapeMismatch);
                }
                proof.verify(expected_digest, version, rows)
            }
            _ => Err(ProofError::ShapeMismatch),
        }
    }

    /// Total path length across both levels (hash work the verifier does).
    pub fn depth(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.depth() + p.table_entry.depth(),
            StateProof::File(p) => p.file.depth(),
            StateProof::Range(p) => p.range.depth() + p.table_entry.depth(),
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            StateProof::Row(p) => p.row.wire_len() + p.table_entry.wire_len() + 44 + 32,
            StateProof::File(p) => p.file.wire_len() + p.path.len() + 36,
            StateProof::Range(p) => {
                p.range.wire_len() + p.table_entry.wire_len() + p.table.len() + 60 + 32
            }
        }
    }
}

impl Database {
    /// Produces a [`RowProof`] for `(table, key)` against the current
    /// [`Database::state_digest`].  Errors when the table itself does
    /// not exist (a missing *row* yields an absence proof instead).
    pub fn prove_row(&self, table: &str, key: u64) -> Result<StateProof, StoreError> {
        let t = self.table(table)?;
        Ok(StateProof::Row(RowProof {
            table: table.to_string(),
            key,
            row: t.prove_row(key),
            table_len: t.len() as u64,
            table_entry: self.prove_table_entry(table),
            table_count: self.table_count() as u32,
            files_digest: self.fs().files_digest(),
        }))
    }

    /// Produces a [`FileProof`] for `path` (presence or absence) against
    /// the current [`Database::state_digest`].
    pub fn prove_file(&self, path: &str) -> StateProof {
        StateProof::File(FileProof {
            path: path.to_string(),
            file: self.fs().prove_file(path),
            tables_root: self.tables_root(),
            table_count: self.table_count() as u32,
        })
    }

    /// Produces a [`StreamProof`] header for the byte range
    /// `[offset, offset + len)` of `path` (presence or absence) against
    /// the current [`Database::state_digest`]: the anchor of a
    /// chunk-by-chunk streamed read, carrying only the chunk-table slice
    /// the range touches.
    pub fn prove_stream(&self, path: &str, offset: u64, len: u64) -> StreamProof {
        StreamProof {
            path: path.to_string(),
            slice: self.fs().manifest(path).map(|m| m.slice(offset, len)),
            file: self.fs().prove_file(path),
            tables_root: self.tables_root(),
            table_count: self.table_count() as u32,
        }
    }

    /// Produces a [`RangeScanProof`] for the rows of `table` with keys
    /// in `[start, end)` against the current
    /// [`Database::state_digest`].  Errors when the table itself does
    /// not exist (an empty range yields a valid zero-row proof instead).
    pub fn prove_scan(&self, table: &str, start: u64, end: u64) -> Result<StateProof, StoreError> {
        let t = self.table(table)?;
        Ok(StateProof::Range(RangeScanProof {
            table: table.to_string(),
            start,
            end,
            range: t.prove_scan(start, end),
            table_len: t.len() as u64,
            table_entry: self.prove_table_entry(table),
            table_count: self.table_count() as u32,
            files_digest: self.fs().files_digest(),
        }))
    }

    /// Proof machinery for an arbitrary static read; `None` for query
    /// shapes that need pledge+audit (computed queries, the
    /// limit-truncatable legacy `Range` — and `ReadFileRange`, which
    /// streams with its own [`StreamProof`]).
    pub fn prove_query(&self, query: &Query) -> Option<Result<StateProof, StoreError>> {
        match query {
            Query::GetRow { table, key } => Some(self.prove_row(table, *key)),
            Query::ReadFile { path } => Some(Ok(self.prove_file(path))),
            Query::ScanRange { table, start, end } => Some(self.prove_scan(table, *start, *end)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 2,
                doc: Document::new().with("v", 20i64),
            },
            UpdateOp::WriteFile {
                path: "/readme".into(),
                contents: "hello world\n".into(),
            },
        ])
        .unwrap();
        db
    }

    #[test]
    fn row_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();

        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        db.prove_row("t", 1)
            .unwrap()
            .verify_result(&digest, v, &q, &result)
            .unwrap();

        // Absent row: empty result + absence proof.
        let q99 = Query::GetRow {
            table: "t".into(),
            key: 99,
        };
        db.prove_row("t", 99)
            .unwrap()
            .verify_result(&digest, v, &q99, &QueryResult::Rows(vec![]))
            .unwrap();
    }

    #[test]
    fn file_presence_and_absence_verify() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        db.prove_file("/readme")
            .verify_result(
                &digest,
                v,
                &q,
                &QueryResult::Text(Some("hello world\n".into())),
            )
            .unwrap();
        let qm = Query::ReadFile {
            path: "/missing".into(),
        };
        db.prove_file("/missing")
            .verify_result(&digest, v, &qm, &QueryResult::Text(None))
            .unwrap();
    }

    #[test]
    fn forged_answers_rejected() {
        let db = db();
        let digest = db.state_digest();
        let v = db.version();
        let q = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let proof = db.prove_row("t", 1).unwrap();

        // Wrong document content.
        let forged = QueryResult::Rows(vec![(1, Document::new().with("v", 666i64))]);
        assert_eq!(
            proof.verify_result(&digest, v, &q, &forged),
            Err(ProofError::RootMismatch)
        );
        // Claiming the row is absent.
        assert_eq!(
            proof.verify_result(&digest, v, &q, &QueryResult::Rows(vec![])),
            Err(ProofError::ShapeMismatch)
        );
        // A proof for a different key cannot answer this query.
        let other = db.prove_row("t", 2).unwrap();
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(
            other.verify_result(&digest, v, &q, &result),
            Err(ProofError::ShapeMismatch)
        );
        // Wrong version (digest binds it).
        assert_eq!(
            proof.verify_result(&digest, v + 1, &q, &result),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn proof_goes_stale_after_write() {
        let mut db = db();
        let q = Query::ReadFile {
            path: "/readme".into(),
        };
        let proof = db.prove_file("/readme");
        let old_digest = db.state_digest();
        let old_v = db.version();
        db.apply_write(&[UpdateOp::AppendFile {
            path: "/readme".into(),
            contents: "more\n".into(),
        }])
        .unwrap();
        let result = QueryResult::Text(Some("hello world\n".into()));
        proof
            .verify_result(&old_digest, old_v, &q, &result)
            .unwrap();
        assert!(proof
            .verify_result(&db.state_digest(), db.version(), &q, &result)
            .is_err());
    }

    fn stream_contents(lines: usize) -> String {
        (0..lines).map(|l| format!("entry {l:05} streamed payload\n")).collect()
    }

    #[test]
    fn stream_proof_verifies_chunk_by_chunk() {
        let mut db = db();
        let contents = stream_contents(3_000);
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/stream".into(),
            contents: contents.clone(),
        }])
        .unwrap();
        let digest = db.state_digest();
        let v = db.version();

        let proof = db.prove_stream("/stream", 0, u64::MAX);
        proof.verify_header(&digest, v).unwrap();
        let slice = proof.slice.clone().unwrap();
        assert!(slice.entries.len() > 1, "fixture should be multi-chunk");
        assert_eq!(slice.first, 0);
        assert_eq!(slice.entries.len(), slice.chunk_count as usize);

        // Verify and assemble chunk by chunk — never holding more than
        // one chunk beyond the output buffer.
        let mut assembled = Vec::new();
        for (i, entry) in slice.entries.iter().enumerate() {
            let data = db.fs().chunk_bytes(&entry.id).unwrap().to_vec();
            proof.verify_chunk(i, &data).unwrap();
            assembled.extend_from_slice(&data);
        }
        assert_eq!(String::from_utf8(assembled).unwrap(), contents);
    }

    #[test]
    fn stream_proof_slice_header_covers_only_the_requested_range() {
        let mut db = db();
        let contents = stream_contents(20_000);
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/big".into(),
            contents: contents.clone(),
        }])
        .unwrap();
        let manifest = db.fs().manifest("/big").unwrap().clone();
        assert!(manifest.chunks.len() >= 8, "fixture should be many-chunk");

        // A small read in the middle of the file.
        let offset = manifest.chunk_offset(manifest.chunks.len() / 2) + 10;
        let proof = db.prove_stream("/big", offset, 100);
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        let slice = proof.slice.as_ref().unwrap();
        assert!(slice.entries.len() <= 2, "small read ships few entries");

        // The slice header is much smaller than a whole-manifest one.
        let whole = db.prove_stream("/big", 0, u64::MAX);
        assert!(proof.wire_len() * 2 < whole.wire_len());

        // The sliced chunks verify at their absolute indexes; others are
        // out of the slice.
        let first = slice.first as usize;
        for (rel, entry) in slice.entries.iter().enumerate() {
            let data = db.fs().chunk_bytes(&entry.id).unwrap();
            proof.verify_chunk(first + rel, data).unwrap();
            assert_eq!(
                slice.entry_start(first + rel),
                Some(manifest.chunk_offset(first + rel))
            );
        }
        assert_eq!(proof.verify_chunk(0, b"x"), Err(ProofError::ShapeMismatch));
    }

    #[test]
    fn stream_proof_rejects_corruption_at_the_corrupted_chunk() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/stream".into(),
            contents: stream_contents(3_000),
        }])
        .unwrap();
        let proof = db.prove_stream("/stream", 0, u64::MAX);
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        let slice = proof.slice.as_ref().unwrap();

        let good0 = db.fs().chunk_bytes(&slice.entries[0].id).unwrap().to_vec();
        let mut bad1 = db.fs().chunk_bytes(&slice.entries[1].id).unwrap().to_vec();
        bad1[7] ^= 0x01;

        proof.verify_chunk(0, &good0).unwrap();
        assert_eq!(proof.verify_chunk(1, &bad1), Err(ProofError::RootMismatch));
        // Wrong length alone is also caught.
        assert_eq!(proof.verify_chunk(0, &good0[..good0.len() - 1]), Err(ProofError::RootMismatch));
        // An index past the slice is a shape error.
        assert_eq!(
            proof.verify_chunk(slice.entries.len(), b"x"),
            Err(ProofError::ShapeMismatch)
        );
        // And a tampered header (extra slice entry) breaks the fold.
        let mut forged = proof.clone();
        let extra = forged.slice.as_ref().unwrap().entries[0];
        forged.slice.as_mut().unwrap().entries.push(extra);
        assert!(forged.verify_header(&db.state_digest(), db.version()).is_err());
    }

    #[test]
    fn stream_proof_absence_for_missing_path() {
        let db = db();
        let proof = db.prove_stream("/missing", 0, u64::MAX);
        assert!(proof.slice.is_none());
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        // An absent file has no chunks to verify.
        assert_eq!(proof.verify_chunk(0, b"x"), Err(ProofError::ShapeMismatch));
    }

    #[test]
    fn delete_then_absence_proof() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/gone".into(),
            contents: stream_contents(500),
        }])
        .unwrap();
        let live = db.prove_stream("/gone", 0, u64::MAX);
        live.verify_header(&db.state_digest(), db.version()).unwrap();

        db.apply_write(&[UpdateOp::DeleteFile { path: "/gone".into() }]).unwrap();
        // The old presence header is stale now...
        assert!(live.verify_header(&db.state_digest(), db.version()).is_err());
        // ...and a fresh proof shows verifiable absence, on the stream
        // path and the point-read path alike.
        let gone = db.prove_stream("/gone", 0, u64::MAX);
        assert!(gone.slice.is_none());
        gone.verify_header(&db.state_digest(), db.version()).unwrap();
        let q = Query::ReadFile { path: "/gone".into() };
        db.prove_file("/gone")
            .verify_result(&db.state_digest(), db.version(), &q, &QueryResult::Text(None))
            .unwrap();
    }

    #[test]
    fn single_chunk_file_proofs() {
        let mut db = db();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/tiny".into(),
            contents: "just one chunk\n".into(),
        }])
        .unwrap();
        let proof = db.prove_stream("/tiny", 0, u64::MAX);
        proof.verify_header(&db.state_digest(), db.version()).unwrap();
        let slice = proof.slice.as_ref().unwrap();
        assert_eq!(slice.entries.len(), 1);
        proof
            .verify_chunk(0, db.fs().chunk_bytes(&slice.entries[0].id).unwrap())
            .unwrap();
        // The whole-file point proof agrees.
        let q = Query::ReadFile { path: "/tiny".into() };
        db.prove_file("/tiny")
            .verify_result(
                &db.state_digest(),
                db.version(),
                &q,
                &QueryResult::Text(Some("just one chunk\n".into())),
            )
            .unwrap();
    }

    #[test]
    fn range_scan_proof_verifies_and_binds_the_query() {
        let mut db = db();
        // Widen the table so the scan is a real slice of it.
        let ops: Vec<UpdateOp> = (3..50)
            .map(|k| UpdateOp::Insert {
                table: "t".into(),
                key: k,
                doc: Document::new().with("v", (k * 10) as i64),
            })
            .collect();
        db.apply_write(&ops).unwrap();
        let digest = db.state_digest();
        let v = db.version();

        let q = Query::ScanRange {
            table: "t".into(),
            start: 10,
            end: 20,
        };
        let (result, cost) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(cost.rows_returned, 10);
        let proof = db.prove_scan("t", 10, 20).unwrap();
        proof.verify_result(&digest, v, &q, &result).unwrap();

        // The proof binds the exact bounds: a shifted query fails shape.
        let q2 = Query::ScanRange {
            table: "t".into(),
            start: 10,
            end: 21,
        };
        assert_eq!(
            proof.verify_result(&digest, v, &q2, &result),
            Err(ProofError::ShapeMismatch)
        );

        // Dropping a row (incomplete answer) is caught.
        let QueryResult::Rows(rows) = &result else {
            panic!("rows")
        };
        let mut omitted = rows.clone();
        omitted.remove(4);
        assert!(proof
            .verify_result(&digest, v, &q, &QueryResult::Rows(omitted))
            .is_err());
        // Forging a value is caught.
        let mut forged = rows.clone();
        forged[2].1 = Document::new().with("v", 666i64);
        assert!(proof
            .verify_result(&digest, v, &q, &QueryResult::Rows(forged))
            .is_err());
        // A stale digest is caught.
        assert_eq!(
            proof.verify_result(&digest, v + 1, &q, &result),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn empty_range_scan_proof_verifies() {
        let db = db();
        let q = Query::ScanRange {
            table: "t".into(),
            start: 100,
            end: 200,
        };
        let (result, _) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(result.row_count(), 0);
        db.prove_scan("t", 100, 200)
            .unwrap()
            .verify_result(&db.state_digest(), db.version(), &q, &result)
            .unwrap();
        // Scanning a missing table is an error, not a proof.
        assert!(db.prove_scan("nope", 0, 10).is_err());
    }

    #[test]
    fn missing_table_is_an_error_not_a_proof() {
        let db = db();
        assert!(db.prove_row("nope", 1).is_err());
        assert!(db
            .prove_query(&Query::GetRow {
                table: "nope".into(),
                key: 1
            })
            .unwrap()
            .is_err());
        assert!(db
            .prove_query(&Query::ListFiles { prefix: "/".into() })
            .is_none());
    }
}
