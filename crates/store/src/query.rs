//! The query AST and result values.
//!
//! Covers the read shapes the paper calls out: point reads, ranges,
//! filtered scans, file reads, `grep Expression Path`, aggregations
//! ("complex join for a database" included via [`Query::Join`]).

use crate::document::Document;
use crate::fsview::GrepMatch;
use crate::predicate::Predicate;
use crate::value::Value;
use sdr_crypto::{Digest, Hash160, Hash256, Sha1, Sha256};
use serde::{Deserialize, Serialize};

/// Aggregation function applied over matching rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Sum of a numeric field.
    Sum(String),
    /// Minimum of a field (any type, total order).
    Min(String),
    /// Maximum of a field.
    Max(String),
    /// Arithmetic mean of a numeric field.
    Avg(String),
}

impl Aggregate {
    fn tag(&self) -> u8 {
        match self {
            Aggregate::Count => 0,
            Aggregate::Sum(_) => 1,
            Aggregate::Min(_) => 2,
            Aggregate::Max(_) => 3,
            Aggregate::Avg(_) => 4,
        }
    }

    /// The field this aggregate reads, if any.
    pub fn field(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(f) | Aggregate::Min(f) | Aggregate::Max(f) | Aggregate::Avg(f) => {
                Some(f)
            }
        }
    }
}

/// A read request against the replicated content.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Fetch one row by primary key.
    GetRow {
        /// Table name.
        table: String,
        /// Primary key.
        key: u64,
    },
    /// Fetch rows with primary keys in `[low, high]`.
    Range {
        /// Table name.
        table: String,
        /// Inclusive lower bound.
        low: u64,
        /// Inclusive upper bound.
        high: u64,
        /// Optional row cap.
        limit: Option<u32>,
    },
    /// Scan (or index-probe) a table with a predicate.
    Filter {
        /// Table name.
        table: String,
        /// Row filter.
        predicate: Predicate,
        /// Optional projection (field names to keep).
        projection: Option<Vec<String>>,
        /// Optional row cap.
        limit: Option<u32>,
    },
    /// Aggregate matching rows, optionally grouped by a field.
    Aggregate {
        /// Table name.
        table: String,
        /// Row filter.
        predicate: Predicate,
        /// Aggregation function.
        agg: Aggregate,
        /// Optional group-by field.
        group_by: Option<String>,
    },
    /// Inner hash-join of two tables on equality of two fields, with a
    /// post-join filter over merged rows (right fields prefixed `r.`).
    Join {
        /// Left table.
        left: String,
        /// Right table.
        right: String,
        /// Join field on the left table.
        left_field: String,
        /// Join field on the right table.
        right_field: String,
        /// Filter over merged rows.
        predicate: Predicate,
        /// Optional row cap.
        limit: Option<u32>,
    },
    /// Read a whole file.
    ReadFile {
        /// File path.
        path: String,
    },
    /// Grep files under a prefix (the paper's flagship complex read).
    Grep {
        /// Glob pattern source (compiled by the executor).
        pattern: String,
        /// Path prefix to search under.
        prefix: String,
    },
    /// List file paths under a prefix.
    ListFiles {
        /// Path prefix.
        prefix: String,
    },
    /// Read a byte range of a file (served chunk-by-chunk under proof
    /// reads; see `StreamProof`).
    ReadFileRange {
        /// File path.
        path: String,
        /// Byte offset of the first byte to read.
        offset: u64,
        /// Number of bytes to read (clamped to the file length).
        len: u64,
    },
    /// Fetch rows with primary keys in the half-open `[start, end)` —
    /// the proof-supported scan shape: one `RangeProof` authenticates
    /// the whole answer, completeness included (unlike [`Query::Range`],
    /// whose `limit` makes the result prefix-truncatable and therefore
    /// unprovable by a single range proof).
    ScanRange {
        /// Table name.
        table: String,
        /// Inclusive lower bound.
        start: u64,
        /// Exclusive upper bound.
        end: u64,
    },
}

impl Query {
    /// Appends a canonical encoding (pledges embed "a copy of the request";
    /// cache keys hash it).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            Query::GetRow { table, key } => {
                out.push(0);
                put_str(out, table);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Query::Range {
                table,
                low,
                high,
                limit,
            } => {
                out.push(1);
                put_str(out, table);
                out.extend_from_slice(&low.to_be_bytes());
                out.extend_from_slice(&high.to_be_bytes());
                out.extend_from_slice(&limit.unwrap_or(u32::MAX).to_be_bytes());
            }
            Query::Filter {
                table,
                predicate,
                projection,
                limit,
            } => {
                out.push(2);
                put_str(out, table);
                predicate.encode_into(out);
                match projection {
                    None => out.push(0),
                    Some(fields) => {
                        out.push(1);
                        out.extend_from_slice(&(fields.len() as u32).to_be_bytes());
                        for f in fields {
                            put_str(out, f);
                        }
                    }
                }
                out.extend_from_slice(&limit.unwrap_or(u32::MAX).to_be_bytes());
            }
            Query::Aggregate {
                table,
                predicate,
                agg,
                group_by,
            } => {
                out.push(3);
                put_str(out, table);
                predicate.encode_into(out);
                out.push(agg.tag());
                if let Some(f) = agg.field() {
                    put_str(out, f);
                }
                match group_by {
                    None => out.push(0),
                    Some(f) => {
                        out.push(1);
                        put_str(out, f);
                    }
                }
            }
            Query::Join {
                left,
                right,
                left_field,
                right_field,
                predicate,
                limit,
            } => {
                out.push(4);
                put_str(out, left);
                put_str(out, right);
                put_str(out, left_field);
                put_str(out, right_field);
                predicate.encode_into(out);
                out.extend_from_slice(&limit.unwrap_or(u32::MAX).to_be_bytes());
            }
            Query::ReadFile { path } => {
                out.push(5);
                put_str(out, path);
            }
            Query::Grep { pattern, prefix } => {
                out.push(6);
                put_str(out, pattern);
                put_str(out, prefix);
            }
            Query::ListFiles { prefix } => {
                out.push(7);
                put_str(out, prefix);
            }
            Query::ReadFileRange { path, offset, len } => {
                out.push(8);
                put_str(out, path);
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
            }
            Query::ScanRange { table, start, end } => {
                out.push(9);
                put_str(out, table);
                out.extend_from_slice(&start.to_be_bytes());
                out.extend_from_slice(&end.to_be_bytes());
            }
        }
    }

    /// Canonical encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Short label for metrics ("what kind of read was this").
    pub fn kind(&self) -> &'static str {
        match self {
            Query::GetRow { .. } => "get",
            Query::Range { .. } => "range",
            Query::Filter { .. } => "filter",
            Query::Aggregate { .. } => "aggregate",
            Query::Join { .. } => "join",
            Query::ReadFile { .. } => "read_file",
            Query::Grep { .. } => "grep",
            Query::ListFiles { .. } => "list",
            Query::ReadFileRange { .. } => "stream",
            Query::ScanRange { .. } => "scan",
        }
    }
}

/// The result of executing a [`Query`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Rows with their primary keys (Get/Range/Filter/Join).
    Rows(Vec<(u64, Document)>),
    /// A single scalar (ungrouped aggregate).
    Scalar(Value),
    /// Grouped aggregates: `(group key, aggregate value)` pairs, ordered.
    Groups(Vec<(Value, Value)>),
    /// File contents (`None` when the file does not exist).
    Text(Option<String>),
    /// Grep hits.
    Matches(Vec<GrepMatch>),
    /// File paths.
    Paths(Vec<String>),
}

impl QueryResult {
    /// Appends a canonical encoding (hashed into pledges).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            QueryResult::Rows(rows) => {
                out.push(0);
                out.extend_from_slice(&(rows.len() as u64).to_be_bytes());
                for (k, d) in rows {
                    out.extend_from_slice(&k.to_be_bytes());
                    d.encode_into(out);
                }
            }
            QueryResult::Scalar(v) => {
                out.push(1);
                v.encode_into(out);
            }
            QueryResult::Groups(groups) => {
                out.push(2);
                out.extend_from_slice(&(groups.len() as u64).to_be_bytes());
                for (k, v) in groups {
                    k.encode_into(out);
                    v.encode_into(out);
                }
            }
            QueryResult::Text(t) => {
                out.push(3);
                match t {
                    None => out.push(0),
                    Some(s) => {
                        out.push(1);
                        put_str(out, s);
                    }
                }
            }
            QueryResult::Matches(ms) => {
                out.push(4);
                out.extend_from_slice(&(ms.len() as u64).to_be_bytes());
                for m in ms {
                    put_str(out, &m.path);
                    out.extend_from_slice(&m.line.to_be_bytes());
                    put_str(out, &m.text);
                }
            }
            QueryResult::Paths(ps) => {
                out.push(5);
                out.extend_from_slice(&(ps.len() as u64).to_be_bytes());
                for p in ps {
                    put_str(out, p);
                }
            }
        }
    }

    /// Canonical encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// SHA-1 of the canonical encoding — the hash the paper places in
    /// pledge packets.
    pub fn sha1(&self) -> Hash160 {
        Sha1::digest(&self.encode())
    }

    /// SHA-256 of the canonical encoding (modern alternative).
    pub fn sha256(&self) -> Hash256 {
        Sha256::digest(&self.encode())
    }

    /// Approximate result size in bytes (cost accounting / wire size).
    pub fn size(&self) -> usize {
        match self {
            QueryResult::Rows(rows) => rows.iter().map(|(_, d)| 8 + d.size()).sum(),
            QueryResult::Scalar(v) => v.size(),
            QueryResult::Groups(g) => g.iter().map(|(k, v)| k.size() + v.size()).sum(),
            QueryResult::Text(t) => t.as_ref().map_or(1, |s| s.len() + 1),
            QueryResult::Matches(ms) => ms.iter().map(|m| m.path.len() + m.text.len() + 4).sum(),
            QueryResult::Paths(ps) => ps.iter().map(|p| p.len() + 4).sum(),
        }
    }

    /// Number of rows/items in the result.
    pub fn row_count(&self) -> usize {
        match self {
            QueryResult::Rows(r) => r.len(),
            QueryResult::Scalar(_) => 1,
            QueryResult::Groups(g) => g.len(),
            QueryResult::Text(t) => usize::from(t.is_some()),
            QueryResult::Matches(m) => m.len(),
            QueryResult::Paths(p) => p.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_encodings_distinguish_queries() {
        let a = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let b = Query::GetRow {
            table: "t".into(),
            key: 2,
        };
        let c = Query::ReadFile { path: "t".into() };
        assert_ne!(a.encode(), b.encode());
        assert_ne!(a.encode(), c.encode());
        assert_eq!(a.encode(), a.clone().encode());
    }

    #[test]
    fn result_hash_changes_with_content() {
        let r1 = QueryResult::Scalar(Value::Int(1));
        let r2 = QueryResult::Scalar(Value::Int(2));
        assert_ne!(r1.sha1(), r2.sha1());
        assert_ne!(r1.sha256(), r2.sha256());
        assert_eq!(r1.sha1(), r1.clone().sha1());
    }

    #[test]
    fn result_hash_distinguishes_variants() {
        let empty_rows = QueryResult::Rows(vec![]);
        let empty_paths = QueryResult::Paths(vec![]);
        assert_ne!(empty_rows.sha1(), empty_paths.sha1());
    }

    #[test]
    fn row_counts() {
        assert_eq!(QueryResult::Text(None).row_count(), 0);
        assert_eq!(QueryResult::Text(Some("x".into())).row_count(), 1);
        assert_eq!(
            QueryResult::Paths(vec!["a".into(), "b".into()]).row_count(),
            2
        );
    }

    #[test]
    fn kind_labels() {
        assert_eq!(
            Query::Grep {
                pattern: "e*".into(),
                prefix: "/".into()
            }
            .kind(),
            "grep"
        );
        assert_eq!(
            Query::ListFiles { prefix: "/".into() }.kind(),
            "list"
        );
    }

    #[test]
    fn aggregate_field_access() {
        assert_eq!(Aggregate::Count.field(), None);
        assert_eq!(Aggregate::Sum("x".into()).field(), Some("x"));
    }
}
