//! Versioned snapshots supporting delayed-discovery rollback.
//!
//! Section 3.5: after a delayed discovery "the harm may be undone, by
//! rolling back the client to the state before that particular read".
//! Masters and the auditor keep a bounded ring of per-version snapshots so
//! any recent version can be re-materialised for re-execution or rollback.

use crate::database::Database;
use std::collections::BTreeMap;

/// A bounded ring of `content_version → state` snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    snaps: BTreeMap<u64, Database>,
    capacity: usize,
}

impl SnapshotStore {
    /// Creates a store retaining at most `capacity` versions.
    pub fn new(capacity: usize) -> Self {
        SnapshotStore {
            snaps: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records the state at its current version, evicting the oldest
    /// snapshot beyond capacity.
    pub fn record(&mut self, db: &Database) {
        self.snaps.insert(db.version(), db.clone());
        while self.snaps.len() > self.capacity {
            let oldest = *self.snaps.keys().next().expect("non-empty");
            self.snaps.remove(&oldest);
        }
    }

    /// The state at `version`, if retained.
    pub fn get(&self, version: u64) -> Option<&Database> {
        self.snaps.get(&version)
    }

    /// Oldest retained version.
    pub fn oldest(&self) -> Option<u64> {
        self.snaps.keys().next().copied()
    }

    /// Newest retained version.
    pub fn newest(&self) -> Option<u64> {
        self.snaps.keys().next_back().copied()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Drops snapshots older than `version` (exclusive) — the auditor calls
    /// this as it advances past audited versions.
    pub fn prune_below(&mut self, version: u64) {
        self.snaps = self.snaps.split_off(&version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::update::UpdateOp;

    fn advance(db: &mut Database, key: u64) {
        db.apply_write(&[UpdateOp::Upsert {
            table: "t".into(),
            key,
            doc: Document::new().with("k", key as i64),
        }])
        .unwrap();
    }

    fn setup() -> Database {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        db
    }

    #[test]
    fn record_and_retrieve_versions() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        s.record(&db); // v1
        advance(&mut db, 1); // v2
        s.record(&db);
        advance(&mut db, 2); // v3
        s.record(&db);

        assert_eq!(s.get(2).unwrap().version(), 2);
        assert!(s.get(2).unwrap().table("t").unwrap().get(2).is_none());
        assert!(s.get(3).unwrap().table("t").unwrap().get(2).is_some());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut db = setup();
        let mut s = SnapshotStore::new(2);
        for k in 1..=4 {
            advance(&mut db, k);
            s.record(&db);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.oldest(), Some(4));
        assert_eq!(s.newest(), Some(5));
        assert!(s.get(2).is_none());
    }

    #[test]
    fn prune_below_drops_old() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        for k in 1..=3 {
            advance(&mut db, k);
            s.record(&db);
        }
        s.prune_below(3);
        assert_eq!(s.oldest(), Some(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn snapshot_is_isolated_from_live_state() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        s.record(&db);
        let v1_digest = s.get(1).unwrap().state_digest();
        advance(&mut db, 9);
        assert_eq!(s.get(1).unwrap().state_digest(), v1_digest);
    }
}
