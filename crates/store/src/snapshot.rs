//! Versioned snapshots supporting delayed-discovery rollback.
//!
//! Section 3.5: after a delayed discovery "the harm may be undone, by
//! rolling back the client to the state before that particular read".
//! Masters and the auditor keep a bounded ring of per-version snapshots so
//! any recent version can be re-materialised for re-execution or rollback.
//!
//! Because [`Database`] is persistent, [`SnapshotStore::record`] retains
//! an O(1) structural-sharing handle, not a deep copy: consecutive
//! versions share every untouched row and file, so a full ring over a
//! large dataset costs memory proportional to the *churn* between
//! versions, not to `capacity x dataset`.

use crate::database::Database;
use std::collections::BTreeMap;

/// A bounded ring of `content_version → state` snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    snaps: BTreeMap<u64, Database>,
    capacity: usize,
}

impl SnapshotStore {
    /// Creates a store retaining at most `capacity` versions.
    ///
    /// `capacity == 0` is the explicit **no-retention mode**: [`record`]
    /// becomes a no-op and [`get`] never finds anything.  Use it for
    /// deployments that deliberately give up Section 3.5 rollback (every
    /// double-check for a non-current version then answers
    /// `VersionUnavailable`).
    ///
    /// [`record`]: SnapshotStore::record
    /// [`get`]: SnapshotStore::get
    pub fn new(capacity: usize) -> Self {
        SnapshotStore {
            snaps: BTreeMap::new(),
            capacity,
        }
    }

    /// The configured capacity (0 = no-retention mode).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records the state at its current version, evicting the oldest
    /// snapshot beyond capacity.
    ///
    /// O(1) modulo the ring bookkeeping: the handle shares structure with
    /// the live database instead of deep-copying it.
    pub fn record(&mut self, db: &Database) {
        if self.capacity == 0 {
            return;
        }
        self.snaps.insert(db.version(), db.clone());
        while self.snaps.len() > self.capacity {
            let oldest = *self.snaps.keys().next().expect("non-empty");
            self.snaps.remove(&oldest);
        }
    }

    /// The state at `version`, if retained.
    pub fn get(&self, version: u64) -> Option<&Database> {
        self.snaps.get(&version)
    }

    /// Oldest retained version.
    pub fn oldest(&self) -> Option<u64> {
        self.snaps.keys().next().copied()
    }

    /// Newest retained version.
    pub fn newest(&self) -> Option<u64> {
        self.snaps.keys().next_back().copied()
    }

    /// Retained versions in ascending order.
    pub fn versions(&self) -> Vec<u64> {
        self.snaps.keys().copied().collect()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Drops snapshots older than `version` (exclusive) — the auditor calls
    /// this as it advances past audited versions.
    pub fn prune_below(&mut self, version: u64) {
        self.snaps = self.snaps.split_off(&version);
    }

    /// Shared-vs-owned node counts summed over every retained snapshot
    /// (memory telemetry; O(capacity × n)).
    ///
    /// A node counted `shared` is reachable from more than one handle
    /// (other snapshots or the live database), so `shared / total`
    /// measures structural reuse across the ring, while the sum of
    /// `owned` approximates the ring's true extra retention cost —
    /// proportional to churn between versions, not to `capacity × n`.
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        let mut out = crate::pmap::NodeStats::default();
        for db in self.snaps.values() {
            out.merge(db.node_stats());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::update::UpdateOp;

    fn advance(db: &mut Database, key: u64) {
        db.apply_write(&[UpdateOp::Upsert {
            table: "t".into(),
            key,
            doc: Document::new().with("k", key as i64),
        }])
        .unwrap();
    }

    fn setup() -> Database {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .unwrap();
        db
    }

    #[test]
    fn record_and_retrieve_versions() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        s.record(&db); // v1
        advance(&mut db, 1); // v2
        s.record(&db);
        advance(&mut db, 2); // v3
        s.record(&db);

        assert_eq!(s.get(2).unwrap().version(), 2);
        assert!(s.get(2).unwrap().table("t").unwrap().get(2).is_none());
        assert!(s.get(3).unwrap().table("t").unwrap().get(2).is_some());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut db = setup();
        let mut s = SnapshotStore::new(2);
        for k in 1..=4 {
            advance(&mut db, k);
            s.record(&db);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.oldest(), Some(4));
        assert_eq!(s.newest(), Some(5));
        assert_eq!(s.versions(), vec![4, 5]);
        assert!(s.get(2).is_none());
    }

    #[test]
    fn zero_capacity_is_no_retention_mode() {
        let mut db = setup();
        let mut s = SnapshotStore::new(0);
        assert_eq!(s.capacity(), 0);
        for k in 1..=3 {
            advance(&mut db, k);
            s.record(&db);
        }
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(db.version()).is_none());
        assert_eq!(s.oldest(), None);
        assert_eq!(s.newest(), None);
    }

    #[test]
    fn node_stats_measure_churn_not_capacity() {
        let mut db = setup();
        for k in 1..=64 {
            advance(&mut db, k);
        }
        let mut s = SnapshotStore::new(8);
        s.record(&db);
        // One retained snapshot sharing everything with the live db:
        // nothing is exclusively owned by the ring.
        let one = s.node_stats();
        assert_eq!(one.owned, 0);
        assert!(one.shared >= 64);

        // A few point writes between snapshots: the ring's owned count
        // grows with the churn (copied paths), while shared counts the
        // structure reused across versions.
        for k in 1..=4 {
            advance(&mut db, k); // Upserts: touch existing keys only.
            s.record(&db);
        }
        let many = s.node_stats();
        assert_eq!(s.len(), 5);
        assert!(many.total() > many.owned, "everything owned: {many:?}");
        // Total reachable across 5 snapshots of a 64-row table stays far
        // below 5 x 64 + overhead — retention cost is churn, not copies.
        assert!(
            many.total() < 5 * 70,
            "ring looks deep-copied: {many:?}"
        );
    }

    #[test]
    fn prune_below_drops_old() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        for k in 1..=3 {
            advance(&mut db, k);
            s.record(&db);
        }
        s.prune_below(3);
        assert_eq!(s.oldest(), Some(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn snapshot_is_isolated_from_live_state() {
        let mut db = setup();
        let mut s = SnapshotStore::new(10);
        s.record(&db);
        let v1_digest = s.get(1).unwrap().state_digest();
        advance(&mut db, 9);
        assert_eq!(s.get(1).unwrap().state_digest(), v1_digest);
    }

    #[test]
    fn ring_rematerialises_any_retained_version_exactly() {
        // Section 3.5 rollback: each retained handle must replay to the
        // precise historical state, independent of later writes sharing
        // structure with it.
        let mut db = setup();
        let mut s = SnapshotStore::new(8);
        let mut reference = Vec::new();
        for k in 1..=6 {
            advance(&mut db, k);
            s.record(&db);
            reference.push((db.version(), db.state_digest()));
        }
        for (version, digest) in reference {
            let snap = s.get(version).expect("retained");
            assert_eq!(snap.version(), version);
            assert_eq!(snap.state_digest(), digest);
            // The snapshot still answers queries against its own state:
            // row k exists in version v iff k < v (rows added one per
            // version starting at v2).
            for k in 1..=6u64 {
                assert_eq!(
                    snap.table("t").unwrap().get(k).is_some(),
                    k < version,
                    "version {version} row {k}"
                );
            }
        }
    }
}
