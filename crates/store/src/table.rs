//! Tables: primary-keyed rows with maintained secondary indexes.

use crate::document::Document;
use crate::error::StoreError;
use crate::pmap::{MerkleContent, PMap};
use crate::value::Value;
use sdr_crypto::Hash256;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One secondary index: indexed value → set of primary keys.
///
/// The value map is persistent and the posting sets sit behind [`Arc`],
/// so a post-snapshot write clones only the one bucket it touches, not
/// the whole index.
type FieldIndex = PMap<Value, Arc<BTreeSet<u64>>>;

/// Adds `key` to the index bucket for `value`, creating the bucket when
/// absent.
fn bucket_insert(index: &mut FieldIndex, value: &Value, key: u64) {
    match index.get_mut(value) {
        Some(set) => {
            Arc::make_mut(set).insert(key);
        }
        None => {
            index.insert(value.clone(), Arc::new(BTreeSet::from([key])));
        }
    }
}

/// A table of documents keyed by a `u64` primary key, with optional
/// secondary indexes on document fields.
///
/// Rows and index buckets live in persistent ([`PMap`]) structures, so
/// cloning a table is O(1) and mutating it copies only the touched paths
/// — older clones (snapshots) keep seeing the state they captured.
/// Indexes are maintained eagerly on every mutation; lookups through
/// [`Table::index_keys`] are `O(log n)` instead of a full scan, and the
/// executor reports which path it took via its cost structure.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    name: String,
    rows: PMap<u64, Document>,
    /// Outer registry is a plain map — there are only ever a handful of
    /// indexed fields, and each [`FieldIndex`] clones in O(1).
    indexes: BTreeMap<String, FieldIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            rows: PMap::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Creates a secondary index on `field`, building it from existing
    /// rows.  Idempotent.
    pub fn create_index(&mut self, field: impl Into<String>) {
        let field = field.into();
        if self.indexes.contains_key(&field) {
            return;
        }
        let mut index = FieldIndex::new();
        for (&key, doc) in self.rows.iter() {
            if let Some(v) = doc.get(&field) {
                bucket_insert(&mut index, v, key);
            }
        }
        self.indexes.insert(field, index);
    }

    /// Whether `field` has a secondary index.
    pub fn has_index(&self, field: &str) -> bool {
        self.indexes.contains_key(field)
    }

    /// Names of indexed fields.
    pub fn indexed_fields(&self) -> impl Iterator<Item = &str> {
        self.indexes.keys().map(String::as_str)
    }

    fn index_insert(&mut self, key: u64, doc: &Document) {
        for (field, index) in &mut self.indexes {
            if let Some(v) = doc.get(field) {
                bucket_insert(index, v, key);
            }
        }
    }

    fn index_remove(&mut self, key: u64, doc: &Document) {
        for (field, index) in &mut self.indexes {
            if let Some(v) = doc.get(field) {
                let emptied = match index.get_mut(v) {
                    Some(set) => {
                        let set = Arc::make_mut(set);
                        set.remove(&key);
                        set.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    index.remove(v);
                }
            }
        }
    }

    /// Inserts a new row; fails if the key exists.
    pub fn insert(&mut self, key: u64, doc: Document) -> Result<(), StoreError> {
        if self.rows.contains_key(&key) {
            return Err(StoreError::KeyExists(key));
        }
        self.index_insert(key, &doc);
        self.rows.insert(key, doc);
        Ok(())
    }

    /// Inserts or replaces a row.
    pub fn upsert(&mut self, key: u64, doc: Document) {
        if let Some(old) = self.rows.remove(&key) {
            self.index_remove(key, &old);
        }
        self.index_insert(key, &doc);
        self.rows.insert(key, doc);
    }

    /// Merges `changes` into an existing row; fails if the key is absent.
    pub fn update(&mut self, key: u64, changes: &Document) -> Result<(), StoreError> {
        let Some(old) = self.rows.remove(&key) else {
            return Err(StoreError::NoSuchKey(key));
        };
        self.index_remove(key, &old);
        let mut merged = old;
        for (f, v) in changes.iter() {
            merged.set(f, v.clone());
        }
        self.index_insert(key, &merged);
        self.rows.insert(key, merged);
        Ok(())
    }

    /// Deletes a row; fails if the key is absent.
    pub fn delete(&mut self, key: u64) -> Result<Document, StoreError> {
        let Some(old) = self.rows.remove(&key) else {
            return Err(StoreError::NoSuchKey(key));
        };
        self.index_remove(key, &old);
        Ok(old)
    }

    /// Reads a row.
    pub fn get(&self, key: u64) -> Option<&Document> {
        self.rows.get(&key)
    }

    /// Iterates all rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Document)> {
        self.rows.iter().map(|(&k, d)| (k, d))
    }

    /// Iterates rows with keys in `[low, high]`.
    pub fn range(&self, low: u64, high: u64) -> impl Iterator<Item = (u64, &Document)> {
        self.rows
            .iter_from(&low)
            .take_while(move |(&k, _)| k <= high)
            .map(|(&k, d)| (k, d))
    }

    /// Primary keys whose `field` equals `value`, via the secondary index.
    ///
    /// Returns `None` when the field is not indexed (caller must scan).
    pub fn index_keys(&self, field: &str, value: &Value) -> Option<Vec<u64>> {
        self.indexes.get(field).map(|idx| {
            idx.get(value)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()
        })
    }

    /// The Merkle digest of the row set (cached; see [`PMap::root_hash`]).
    pub fn rows_digest(&self) -> Hash256 {
        self.rows.root_hash()
    }

    /// O(log n) inclusion (or absence) proof for a row against
    /// [`Table::rows_digest`] (see [`PMap::prove`]).
    pub fn prove_row(&self, key: u64) -> crate::pmap::InclusionProof<u64> {
        self.rows.prove(&key)
    }

    /// Rows with `start <= key < end`, ascending (the half-open scan a
    /// [`Table::prove_scan`] proof covers).
    pub fn scan(&self, start: u64, end: u64) -> impl Iterator<Item = (u64, &Document)> {
        self.rows
            .iter_from(&start)
            .take_while(move |(&k, _)| k < end)
            .map(|(&k, d)| (k, d))
    }

    /// One O(log n + k) proof for every row in `[start, end)` —
    /// completeness included — against [`Table::rows_digest`]
    /// (see [`PMap::prove_range`]).
    pub fn prove_scan(&self, start: u64, end: u64) -> crate::pmap::RangeProof<u64> {
        self.rows.prove_range(&start, &end)
    }

    /// Shared-vs-owned node counts over rows and index buckets
    /// (memory telemetry).  `ancestor_shared` marks a table reached
    /// through an already-shared container node.
    pub fn node_stats_inherited(&self, ancestor_shared: bool) -> crate::pmap::NodeStats {
        let mut out = self.rows.node_stats_inherited(ancestor_shared);
        for index in self.indexes.values() {
            out.merge(index.node_stats_inherited(ancestor_shared));
        }
        out
    }

    /// Shared-vs-owned node counts over rows and index buckets
    /// (memory telemetry).
    pub fn node_stats(&self) -> crate::pmap::NodeStats {
        self.node_stats_inherited(false)
    }

    /// Appends a canonical encoding of the full table state (a linear
    /// scan — digests should prefer [`Table::rows_digest`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.name.len() as u32).to_be_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.rows.len() as u64).to_be_bytes());
        for (k, doc) in self.rows.iter() {
            out.extend_from_slice(&k.to_be_bytes());
            doc.encode_into(out);
        }
    }

    /// Approximate total size in bytes.
    pub fn size(&self) -> usize {
        self.rows.iter().map(|(_, d)| 8 + d.size()).sum()
    }
}

impl MerkleContent for Table {
    /// Tables contribute their cached row-set digest (indexes are derived
    /// data and stay outside the authenticated state; the table name is
    /// the entry key and is hashed by the containing map).
    fn content_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows.len() as u64).to_be_bytes());
        out.extend_from_slice(self.rows.root_hash().as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product(name: &str, price: i64, cat: &str) -> Document {
        Document::new()
            .with("name", name)
            .with("price", price)
            .with("category", cat)
    }

    fn table() -> Table {
        let mut t = Table::new("products");
        t.create_index("category");
        t.insert(1, product("anvil", 100, "tools")).unwrap();
        t.insert(2, product("rope", 10, "tools")).unwrap();
        t.insert(3, product("tnt", 50, "explosives")).unwrap();
        t
    }

    #[test]
    fn insert_get_len() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(1).unwrap().get("name"),
            Some(&Value::Str("anvil".into()))
        );
        assert!(t.get(99).is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = table();
        assert_eq!(
            t.insert(1, Document::new()),
            Err(StoreError::KeyExists(1))
        );
    }

    #[test]
    fn index_lookup() {
        let t = table();
        assert_eq!(
            t.index_keys("category", &Value::Str("tools".into())),
            Some(vec![1, 2])
        );
        assert_eq!(
            t.index_keys("category", &Value::Str("food".into())),
            Some(vec![])
        );
        assert_eq!(t.index_keys("price", &Value::Int(10)), None);
    }

    #[test]
    fn index_maintained_on_update() {
        let mut t = table();
        t.update(2, &Document::new().with("category", "marine"))
            .unwrap();
        assert_eq!(
            t.index_keys("category", &Value::Str("tools".into())),
            Some(vec![1])
        );
        assert_eq!(
            t.index_keys("category", &Value::Str("marine".into())),
            Some(vec![2])
        );
        // Other fields survive the merge.
        assert_eq!(t.get(2).unwrap().get("price"), Some(&Value::Int(10)));
    }

    #[test]
    fn index_maintained_on_delete() {
        let mut t = table();
        t.delete(3).unwrap();
        assert_eq!(
            t.index_keys("category", &Value::Str("explosives".into())),
            Some(vec![])
        );
        assert_eq!(t.delete(3), Err(StoreError::NoSuchKey(3)));
    }

    #[test]
    fn index_created_after_rows_exist() {
        let mut t = table();
        t.create_index("price");
        assert_eq!(t.index_keys("price", &Value::Int(50)), Some(vec![3]));
    }

    #[test]
    fn upsert_replaces_and_reindexes() {
        let mut t = table();
        t.upsert(1, product("anvil-xl", 200, "heavy"));
        assert_eq!(
            t.index_keys("category", &Value::Str("heavy".into())),
            Some(vec![1])
        );
        assert_eq!(
            t.index_keys("category", &Value::Str("tools".into())),
            Some(vec![2])
        );
    }

    #[test]
    fn range_by_primary_key() {
        let t = table();
        let keys: Vec<u64> = t.range(2, 3).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 3]);
    }

    #[test]
    fn encoding_deterministic_and_content_sensitive() {
        let a = table();
        let b = table();
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_eq!(ea, eb);

        let mut c = table();
        c.delete(1).unwrap();
        let mut ec = Vec::new();
        c.encode_into(&mut ec);
        assert_ne!(ea, ec);
    }

    #[test]
    fn update_missing_key_fails() {
        let mut t = table();
        assert_eq!(
            t.update(42, &Document::new()),
            Err(StoreError::NoSuchKey(42))
        );
    }

    #[test]
    fn clone_is_o1_snapshot_isolated_from_writes() {
        let mut t = table();
        let snap = t.clone();
        let snap_digest = snap.rows_digest();
        t.upsert(1, product("anvil-xl", 200, "heavy"));
        t.delete(2).unwrap();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.get(1).unwrap().get("name"),
            Some(&Value::Str("anvil".into()))
        );
        assert_eq!(
            snap.index_keys("category", &Value::Str("tools".into())),
            Some(vec![1, 2])
        );
        assert_eq!(snap.rows_digest(), snap_digest);
        assert_ne!(t.rows_digest(), snap_digest);
    }

    #[test]
    fn rows_digest_is_content_only() {
        // Same rows reached via different histories digest identically.
        let a = table();
        let mut b = Table::new("products");
        b.create_index("category");
        b.insert(3, product("tnt", 50, "explosives")).unwrap();
        b.insert(1, product("old", 1, "junk")).unwrap();
        b.insert(2, product("rope", 10, "tools")).unwrap();
        b.upsert(1, product("anvil", 100, "tools"));
        assert_eq!(a.rows_digest(), b.rows_digest());
    }
}
