//! Write operations applied deterministically to a database.

use crate::database::Database;
use crate::document::Document;
use crate::error::StoreError;
use serde::{Deserialize, Serialize};

/// A single write operation.
///
/// A *write request* in the protocol is a batch of these (see
/// [`Database::apply_write`]); applying the same batch to equal states
/// yields equal states — the property state-machine replication needs and
/// the audit relies on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Create an empty table with the given secondary indexes.
    CreateTable {
        /// Table name.
        table: String,
        /// Fields to index.
        indexes: Vec<String>,
    },
    /// Insert a row (fails when the key exists).
    Insert {
        /// Table name.
        table: String,
        /// Primary key.
        key: u64,
        /// Row contents.
        doc: Document,
    },
    /// Insert or replace a row.
    Upsert {
        /// Table name.
        table: String,
        /// Primary key.
        key: u64,
        /// Row contents.
        doc: Document,
    },
    /// Merge fields into an existing row.
    Update {
        /// Table name.
        table: String,
        /// Primary key.
        key: u64,
        /// Fields to merge.
        changes: Document,
    },
    /// Delete a row.
    Delete {
        /// Table name.
        table: String,
        /// Primary key.
        key: u64,
    },
    /// Create or replace a file.
    WriteFile {
        /// File path.
        path: String,
        /// New contents.
        contents: String,
    },
    /// Append to a file (created when absent).
    AppendFile {
        /// File path.
        path: String,
        /// Data to append.
        contents: String,
    },
    /// Delete a file.
    DeleteFile {
        /// File path.
        path: String,
    },
}

impl UpdateOp {
    /// Applies the operation to `db`.
    pub fn apply(&self, db: &mut Database) -> Result<(), StoreError> {
        match self {
            UpdateOp::CreateTable { table, indexes } => {
                db.create_table(table)?;
                let t = db.table_mut(table)?;
                for f in indexes {
                    t.create_index(f.clone());
                }
                Ok(())
            }
            UpdateOp::Insert { table, key, doc } => db.table_mut(table)?.insert(*key, doc.clone()),
            UpdateOp::Upsert { table, key, doc } => {
                db.table_mut(table)?.upsert(*key, doc.clone());
                Ok(())
            }
            UpdateOp::Update {
                table,
                key,
                changes,
            } => db.table_mut(table)?.update(*key, changes),
            UpdateOp::Delete { table, key } => db.table_mut(table)?.delete(*key).map(|_| ()),
            UpdateOp::WriteFile { path, contents } => {
                db.fs_mut().write_file(path.clone(), contents.clone());
                Ok(())
            }
            UpdateOp::AppendFile { path, contents } => {
                db.fs_mut().append_file(path.clone(), contents);
                Ok(())
            }
            UpdateOp::DeleteFile { path } => db.fs_mut().delete_file(path),
        }
    }

    /// Appends a canonical encoding (write requests travel inside signed
    /// broadcasts).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            UpdateOp::CreateTable { table, indexes } => {
                out.push(0);
                put_str(out, table);
                out.extend_from_slice(&(indexes.len() as u32).to_be_bytes());
                for f in indexes {
                    put_str(out, f);
                }
            }
            UpdateOp::Insert { table, key, doc } => {
                out.push(1);
                put_str(out, table);
                out.extend_from_slice(&key.to_be_bytes());
                doc.encode_into(out);
            }
            UpdateOp::Upsert { table, key, doc } => {
                out.push(2);
                put_str(out, table);
                out.extend_from_slice(&key.to_be_bytes());
                doc.encode_into(out);
            }
            UpdateOp::Update {
                table,
                key,
                changes,
            } => {
                out.push(3);
                put_str(out, table);
                out.extend_from_slice(&key.to_be_bytes());
                changes.encode_into(out);
            }
            UpdateOp::Delete { table, key } => {
                out.push(4);
                put_str(out, table);
                out.extend_from_slice(&key.to_be_bytes());
            }
            UpdateOp::WriteFile { path, contents } => {
                out.push(5);
                put_str(out, path);
                put_str(out, contents);
            }
            UpdateOp::AppendFile { path, contents } => {
                out.push(6);
                put_str(out, path);
                put_str(out, contents);
            }
            UpdateOp::DeleteFile { path } => {
                out.push(7);
                put_str(out, path);
            }
        }
    }

    /// Encodes a batch of operations canonically.
    pub fn encode_batch(ops: &[UpdateOp]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(ops.len() as u32).to_be_bytes());
        for op in ops {
            op.encode_into(&mut out);
        }
        out
    }

    /// Approximate encoded size (for network cost accounting).
    pub fn size(&self) -> usize {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> Database {
        let mut db = Database::new();
        UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec!["cat".into()],
        }
        .apply(&mut db)
        .unwrap();
        db
    }

    #[test]
    fn create_insert_update_delete() {
        let mut db = db_with_table();
        UpdateOp::Insert {
            table: "t".into(),
            key: 1,
            doc: Document::new().with("cat", "a").with("v", 1i64),
        }
        .apply(&mut db)
        .unwrap();
        UpdateOp::Update {
            table: "t".into(),
            key: 1,
            changes: Document::new().with("v", 2i64),
        }
        .apply(&mut db)
        .unwrap();
        assert_eq!(
            db.table("t").unwrap().get(1).unwrap().get("v"),
            Some(&crate::value::Value::Int(2))
        );
        UpdateOp::Delete {
            table: "t".into(),
            key: 1,
        }
        .apply(&mut db)
        .unwrap();
        assert!(db.table("t").unwrap().get(1).is_none());
    }

    #[test]
    fn file_operations() {
        let mut db = Database::new();
        UpdateOp::WriteFile {
            path: "/a".into(),
            contents: "one\n".into(),
        }
        .apply(&mut db)
        .unwrap();
        UpdateOp::AppendFile {
            path: "/a".into(),
            contents: "two\n".into(),
        }
        .apply(&mut db)
        .unwrap();
        assert_eq!(db.fs().read("/a").as_deref(), Some("one\ntwo\n"));
        UpdateOp::DeleteFile { path: "/a".into() }.apply(&mut db).unwrap();
        assert!(db.fs().read("/a").is_none());
    }

    #[test]
    fn errors_propagate() {
        let mut db = db_with_table();
        let bad = UpdateOp::Update {
            table: "t".into(),
            key: 9,
            changes: Document::new(),
        };
        assert_eq!(bad.apply(&mut db), Err(StoreError::NoSuchKey(9)));
        let bad = UpdateOp::Insert {
            table: "missing".into(),
            key: 1,
            doc: Document::new(),
        };
        assert!(matches!(bad.apply(&mut db), Err(StoreError::NoSuchTable(_))));
    }

    #[test]
    fn same_batch_same_state() {
        let ops = vec![
            UpdateOp::CreateTable {
                table: "x".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "x".into(),
                key: 5,
                doc: Document::new().with("f", 1.5),
            },
            UpdateOp::WriteFile {
                path: "/p".into(),
                contents: "data".into(),
            },
        ];
        let mut a = Database::new();
        let mut b = Database::new();
        for op in &ops {
            op.apply(&mut a).unwrap();
            op.apply(&mut b).unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn batch_encoding_roundtrip_stability() {
        let ops = vec![
            UpdateOp::Delete {
                table: "t".into(),
                key: 3,
            },
            UpdateOp::DeleteFile { path: "/f".into() },
        ];
        assert_eq!(UpdateOp::encode_batch(&ops), UpdateOp::encode_batch(&ops));
        assert_ne!(
            UpdateOp::encode_batch(&ops),
            UpdateOp::encode_batch(&ops[..1])
        );
    }
}
