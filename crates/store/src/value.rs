//! Typed field values with a total order and canonical encoding.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A typed value stored in a document field.
///
/// Values have a *total* order (floats order via [`f64::total_cmp`], and
/// values of different types order by type tag), which lets any value be an
/// index key.  The canonical encoding ([`Value::encode_into`]) underpins
/// result hashing: two stores with equal content produce identical bytes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Type tag used for cross-type ordering and encoding.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
        }
    }

    /// Appends the canonical encoding of this value to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => out.push(u8::from(*b)),
            Value::Int(i) => out.extend_from_slice(&i.to_be_bytes()),
            Value::Float(f) => out.extend_from_slice(&f.to_bits().to_be_bytes()),
            Value::Str(s) => {
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
        }
    }

    /// Approximate in-memory/wire size in bytes (for cost accounting).
    pub fn size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
        }
    }

    /// Numeric view (ints and floats), for aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numerics compare numerically so range queries behave
            // intuitively; ties broken by tag for totality.
            (Int(a), Float(b)) => (*a as f64)
                .total_cmp(b)
                .then(self.tag().cmp(&other.tag())),
            (Float(a), Int(b)) => a
                .total_cmp(&(*b as f64))
                .then(self.tag().cmp(&other.tag())),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut buf = Vec::with_capacity(self.size());
        self.encode_into(&mut buf);
        buf.hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "0x{}", sdr_crypto::hex::encode(b)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(5),
            Value::Str("a".into()),
            Value::Bytes(vec![1]),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert!(Value::Int(2) > Value::Float(1.5));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts NaN above all finite values; what matters is that
        // comparison never panics and is consistent.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&one), Ordering::Equal);
    }

    #[test]
    fn encoding_distinguishes_types_and_values() {
        fn enc(v: &Value) -> Vec<u8> {
            let mut out = Vec::new();
            v.encode_into(&mut out);
            out
        }
        assert_ne!(enc(&Value::Int(1)), enc(&Value::Int(2)));
        assert_ne!(enc(&Value::Int(1)), enc(&Value::Float(1.0)));
        assert_ne!(enc(&Value::Str("1".into())), enc(&Value::Int(1)));
        assert_eq!(enc(&Value::Str("ab".into())), enc(&Value::Str("ab".into())));
    }

    #[test]
    fn size_estimates() {
        assert_eq!(Value::Null.size(), 1);
        assert_eq!(Value::Int(7).size(), 9);
        assert_eq!(Value::Str("abcd".into()).size(), 9);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
