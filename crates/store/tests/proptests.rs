//! Property-based tests for the store: ordering, encoding, index/scan
//! equivalence, pattern matching, and write atomicity.

use proptest::prelude::*;
use sdr_store::{
    execute, CmpOp, Database, Document, PMap, Pattern, Predicate, Query, QueryResult, UpdateOp,
    Value,
};
use std::collections::BTreeMap;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

proptest! {
    /// The value order is a total order: antisymmetric and transitive on
    /// sampled triples, and consistent with equality.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Canonical encodings are injective over generated values: equal
    /// encodings imply equal values and vice versa.
    #[test]
    fn value_encoding_injective(a in arb_value(), b in arb_value()) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        prop_assert_eq!(ea == eb, a == b);
    }

    /// An escaped literal pattern matches exactly its own text.
    #[test]
    fn escaped_pattern_matches_itself(text in "[a-zA-Z0-9 *?\\[\\]]{0,24}") {
        let escaped: String = text
            .chars()
            .flat_map(|c| match c {
                '*' | '?' | '[' | ']' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        let pat = Pattern::compile(&escaped).expect("escape always compiles");
        prop_assert!(pat.matches(&text));
    }

    /// `search` is equivalent to an unanchored match: a pattern found by
    /// search is matched by `*pat*`.
    #[test]
    fn search_equals_star_wrapped_match(
        needle in "[a-z]{1,6}",
        hay in "[a-z ]{0,40}",
    ) {
        let plain = Pattern::compile(&needle).expect("compiles");
        let wrapped = Pattern::compile(&format!("*{needle}*")).expect("compiles");
        prop_assert_eq!(plain.search(&hay), wrapped.matches(&hay));
        // And search agrees with plain substring search for literals.
        prop_assert_eq!(plain.search(&hay), hay.contains(&needle));
    }

    /// Index-accelerated filters return exactly what a full scan returns.
    #[test]
    fn index_equals_scan(
        rows in proptest::collection::vec(("[a-c]", 0i64..20), 1..40),
        probe in "[a-c]",
    ) {
        let mut indexed = Database::new();
        indexed.create_table("t").expect("fresh");
        indexed.table_mut("t").expect("t").create_index("cat");
        let mut plain = Database::new();
        plain.create_table("t").expect("fresh");

        for (i, (cat, v)) in rows.iter().enumerate() {
            let doc = Document::new().with("cat", cat.as_str()).with("v", *v);
            indexed.table_mut("t").expect("t").insert(i as u64, doc.clone()).expect("unique");
            plain.table_mut("t").expect("t").insert(i as u64, doc).expect("unique");
        }

        let q = Query::Filter {
            table: "t".into(),
            predicate: Predicate::eq("cat", probe.as_str()),
            projection: None,
            limit: None,
        };
        let (ri, ci) = execute(&indexed, &q).expect("ok");
        let (rs, cs) = execute(&plain, &q).expect("ok");
        prop_assert_eq!(ri.sha1(), rs.sha1(), "index and scan disagree");
        // The indexed path must not scan.
        prop_assert_eq!(ci.rows_scanned, 0);
        prop_assert!(cs.rows_scanned as usize == rows.len());
    }

    /// A failing batch leaves the database untouched (atomicity).
    #[test]
    fn failed_batch_is_atomic(
        keys in proptest::collection::vec(0u64..10, 1..6),
        dup in 0u64..10,
    ) {
        let mut db = Database::new();
        db.create_table("t").expect("fresh");
        db.table_mut("t").expect("t").insert(dup, Document::new()).expect("unique");
        let before = db.state_digest();

        // Build a batch that inserts `keys` then re-inserts `dup` (fails).
        let mut ops: Vec<UpdateOp> = keys
            .iter()
            .filter(|k| **k != dup)
            .enumerate()
            .map(|(i, _)| UpdateOp::Insert {
                table: "t".into(),
                key: 100 + i as u64,
                doc: Document::new(),
            })
            .collect();
        ops.push(UpdateOp::Insert {
            table: "t".into(),
            key: dup,
            doc: Document::new(),
        });
        prop_assert!(db.apply_write(&ops).is_err());
        prop_assert_eq!(db.state_digest(), before);
    }

    /// Executing the same query twice yields byte-identical results.
    #[test]
    fn execution_is_deterministic(
        rows in proptest::collection::vec((0i64..100, "[a-d]"), 0..30),
        low in 0u64..20,
        span in 0u64..20,
    ) {
        let mut db = Database::new();
        db.create_table("t").expect("fresh");
        for (i, (v, c)) in rows.iter().enumerate() {
            db.table_mut("t")
                .expect("t")
                .insert(i as u64, Document::new().with("v", *v).with("c", c.as_str()))
                .expect("unique");
        }
        let queries = [
            Query::Range { table: "t".into(), low, high: low + span, limit: None },
            Query::Aggregate {
                table: "t".into(),
                predicate: Predicate::cmp("v", CmpOp::Ge, 50i64),
                agg: sdr_store::Aggregate::Count,
                group_by: Some("c".into()),
            },
        ];
        for q in &queries {
            let (r1, _) = execute(&db, q).expect("ok");
            let (r2, _) = execute(&db, q).expect("ok");
            prop_assert_eq!(r1.sha1(), r2.sha1());
        }
    }

    /// Result encodings are stable across clones and distinguish results.
    #[test]
    fn result_hash_distinguishes(a in 0i64..1000, b in 0i64..1000) {
        let ra = QueryResult::Scalar(Value::Int(a));
        let rb = QueryResult::Scalar(Value::Int(b));
        prop_assert_eq!(ra.sha1() == rb.sha1(), a == b);
    }

    /// The persistent map agrees with a `BTreeMap` model under arbitrary
    /// op sequences, its digest is a pure function of content (rebuild
    /// oracle), and snapshots taken mid-stream stay frozen.
    #[test]
    fn pmap_matches_model_and_digest_is_content_pure(
        ops in proptest::collection::vec((0u64..48, "[a-z]{0,6}", any::<bool>()), 1..80),
    ) {
        type Snapshot = (PMap<u64, String>, Vec<(u64, String)>);
        let mut map: PMap<u64, String> = PMap::new();
        let mut model: BTreeMap<u64, String> = BTreeMap::new();
        let mut snapshots: Vec<Snapshot> = Vec::new();

        for (i, (key, val, is_remove)) in ops.iter().enumerate() {
            if *is_remove {
                prop_assert_eq!(map.remove(key), model.remove(key));
            } else {
                prop_assert_eq!(
                    map.insert(*key, val.clone()),
                    model.insert(*key, val.clone())
                );
            }
            prop_assert_eq!(map.len(), model.len());
            if i.is_multiple_of(13) {
                snapshots.push((
                    map.clone(),
                    model.iter().map(|(k, v)| (*k, v.clone())).collect(),
                ));
            }
        }

        // Content agreement, in order.
        let got: Vec<(u64, String)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
        let want: Vec<(u64, String)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(&got, &want);

        // Digest oracle: a map rebuilt from scratch out of the final
        // content (fresh nodes, cold caches) digests identically, and the
        // cache agrees with a cache-free recomputation.
        let mut rebuilt: PMap<u64, String> = PMap::new();
        for (k, v) in &want {
            rebuilt.insert(*k, v.clone());
        }
        prop_assert_eq!(map.root_hash(), rebuilt.root_hash());
        prop_assert_eq!(map.root_hash(), map.root_hash_uncached());

        // Snapshots still hold exactly the content they captured.
        for (snap, content) in snapshots {
            let snap_got: Vec<(u64, String)> =
                snap.iter().map(|(k, v)| (*k, v.clone())).collect();
            prop_assert_eq!(&snap_got, &content);
            prop_assert_eq!(snap.root_hash(), snap.root_hash_uncached());
        }
    }

    /// Proof oracle: after an arbitrary edit sequence, `prove`/`verify`
    /// agree with `root_hash` for every probed key — present keys verify
    /// with exactly their current value (and nothing else), absent keys
    /// verify as absent (and not as present), and no proof survives a
    /// subsequent mutation of the map.
    #[test]
    fn pmap_proofs_agree_with_root_hash_on_random_edits(
        ops in proptest::collection::vec((0u64..48, "[a-z]{0,6}", any::<bool>()), 1..80),
        probes in proptest::collection::vec(0u64..64, 1..12),
    ) {
        let enc = |v: &str| {
            let mut out = Vec::new();
            use sdr_store::pmap::MerkleContent;
            v.to_string().content_encode(&mut out);
            out
        };
        let mut map: PMap<u64, String> = PMap::new();
        let mut model: BTreeMap<u64, String> = BTreeMap::new();
        for (key, val, is_remove) in &ops {
            if *is_remove {
                map.remove(key);
                model.remove(key);
            } else {
                map.insert(*key, val.clone());
                model.insert(*key, val.clone());
            }
        }
        let root = map.root_hash();
        for key in &probes {
            let proof = map.prove(key);
            match model.get(key) {
                Some(val) => {
                    prop_assert!(proof.claims_present());
                    proof.verify(&root, key, Some(&enc(val)))
                        .unwrap_or_else(|e| panic!("key {key}: {e}"));
                    // Only the true value verifies.
                    prop_assert!(proof.verify(&root, key, Some(&enc("forged-x"))).is_err());
                    prop_assert!(proof.verify(&root, key, None).is_err());
                }
                None => {
                    prop_assert!(!proof.claims_present());
                    proof.verify(&root, key, None)
                        .unwrap_or_else(|e| panic!("absent {key}: {e}"));
                    prop_assert!(proof.verify(&root, key, Some(&enc("ghost"))).is_err());
                }
            }
        }
        // A mutation invalidates proofs against the new root.
        let probe = probes[0];
        let proof = map.prove(&probe);
        map.insert(63, "post-proof".into());
        let claimed = model.get(&probe).map(|v| enc(v));
        prop_assert!(proof.verify(&map.root_hash(), &probe, claimed.as_deref()).is_err()
            || probe == 63);
    }

    /// Database digests are a pure function of content across interleaved
    /// snapshots, rolled-back batches, and shared structure.
    #[test]
    fn state_digest_survives_cow_sharing_and_rollbacks(
        writes in proptest::collection::vec(
            proptest::collection::vec((0u64..32, -100i64..100), 1..4),
            1..12,
        ),
    ) {
        let setup = UpdateOp::CreateTable { table: "t".into(), indexes: vec!["v".into()] };
        let mut plain = Database::new();
        plain.apply_write(std::slice::from_ref(&setup)).expect("schema");
        let mut cow = Database::new();
        cow.apply_write(std::slice::from_ref(&setup)).expect("schema");

        let mut retained = Vec::new();
        for batch in &writes {
            let ops: Vec<UpdateOp> = batch
                .iter()
                .map(|(k, v)| UpdateOp::Upsert {
                    table: "t".into(),
                    key: *k,
                    doc: Document::new().with("v", *v),
                })
                .collect();
            // The cow copy takes a snapshot before every batch and
            // suffers a failing batch (rolled back via the pre-write
            // handle) between real ones.
            retained.push((cow.clone(), cow.state_digest()));
            let mut poisoned = ops.clone();
            poisoned.push(UpdateOp::Insert {
                table: "missing".into(),
                key: 0,
                doc: Document::new(),
            });
            prop_assert!(cow.apply_write(&poisoned).is_err());
            plain.apply_write(&ops).expect("applies");
            cow.apply_write(&ops).expect("applies");
            prop_assert_eq!(plain.state_digest(), cow.state_digest());
        }
        // Every snapshot kept its digest despite all the sharing.
        for (snap, digest) in retained {
            prop_assert_eq!(snap.state_digest(), digest);
        }
    }

    /// Chunking round-trip oracle: the content-defined spans partition
    /// the input exactly (contiguous, in-bounds, reassembling to the
    /// original), chunk sizes respect the configured bounds, and the
    /// fsview built on the chunk store reads back byte-identical
    /// content through both the whole-file and ranged paths.
    #[test]
    fn chunking_reassembles_and_fsview_round_trips(
        contents in "[a-zA-Z0-9 \n]{0,12000}",
        tail in "[a-z\n]{0,3000}",
        offset in 0u64..16_000,
        len in 0u64..8_000,
    ) {
        use sdr_store::chunk::{chunk_spans, MAX_CHUNK, MIN_CHUNK};

        let data = contents.as_bytes();
        let spans = chunk_spans(data);
        // Exact partition: contiguous from 0 to len.
        let mut expect_start = 0;
        for &(start, end) in &spans {
            prop_assert_eq!(start, expect_start);
            prop_assert!(end > start);
            expect_start = end;
        }
        prop_assert_eq!(expect_start, data.len());
        if data.is_empty() {
            prop_assert!(spans.is_empty());
        }
        // Size bounds: every chunk but the last is >= MIN_CHUNK (the
        // tail may be short); none exceeds MAX_CHUNK.
        for (i, &(start, end)) in spans.iter().enumerate() {
            prop_assert!(end - start <= MAX_CHUNK);
            if i + 1 < spans.len() {
                prop_assert!(end - start >= MIN_CHUNK);
            }
        }

        // Fsview oracle: write + append reads back as the plain string
        // concatenation, whole and by range.
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::WriteFile { path: "/f".into(), contents: contents.clone() },
            UpdateOp::AppendFile { path: "/f".into(), contents: tail.clone() },
        ])
        .expect("writes apply");
        let full = format!("{contents}{tail}");
        prop_assert_eq!(db.fs().read("/f").as_deref(), Some(full.as_str()));
        let lo = (offset as usize).min(full.len());
        let hi = lo.saturating_add(len as usize).min(full.len());
        prop_assert_eq!(
            db.fs().read_range("/f", offset, len).as_deref(),
            Some(&full[lo..hi])
        );
    }
}

proptest! {
    /// Range-proof oracle: for a random map and random `[start, end)`,
    /// `prove_range` verifies against exactly the `iter_from`-truncated
    /// contents, every row it covers also carries a valid point proof,
    /// and any single mutation of the claimed rows — omission, forged
    /// value, duplication, or key shift — is rejected.
    #[test]
    fn range_proof_matches_point_proofs_and_rejects_mutations(
        pairs in proptest::collection::vec((0u64..64, "[a-z]{0,8}"), 0..40),
        a in 0u64..70,
        b in 0u64..70,
    ) {
        use sdr_store::{MerkleContent, PMap};

        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let entries: BTreeMap<u64, String> = pairs.into_iter().collect();
        let mut m: PMap<u64, String> = PMap::new();
        for (k, v) in &entries {
            m.insert(*k, v.clone());
        }
        let root = m.root_hash();

        // The honest answer: `iter_from` truncated at `end`.
        let rows: Vec<(u64, Vec<u8>)> = m
            .iter_from(&start)
            .take_while(|(k, _)| **k < end)
            .map(|(k, v)| {
                let mut enc = Vec::new();
                v.content_encode(&mut enc);
                (*k, enc)
            })
            .collect();
        let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        let expect: Vec<u64> =
            entries.keys().copied().filter(|k| (start..end).contains(k)).collect();
        prop_assert_eq!(&keys, &expect, "iter_from truncation disagrees with the oracle");

        let proof = m.prove_range(&start, &end);
        prop_assert!(proof.verify(&root, &start, &end, &rows).is_ok());

        // Every covered row's point proof verifies too (range ⇔ points).
        for (k, enc) in &rows {
            prop_assert!(m.prove(k).verify(&root, k, Some(enc)).is_ok());
        }

        if rows.is_empty() {
            // Claiming a row where the range is provably empty must die.
            if start < end {
                let phantom = vec![(start, b"phantom".to_vec())];
                prop_assert!(proof.verify(&root, &start, &end, &phantom).is_err());
            }
        } else {
            let i = rows.len() / 2;
            let mut dropped = rows.clone();
            dropped.remove(i);
            prop_assert!(
                proof.verify(&root, &start, &end, &dropped).is_err(),
                "omitting a row must break completeness"
            );
            let mut altered = rows.clone();
            altered[i].1.push(0xFF);
            prop_assert!(proof.verify(&root, &start, &end, &altered).is_err());
            let mut doubled = rows.clone();
            let dup = doubled[i].clone();
            doubled.insert(i, dup);
            prop_assert!(proof.verify(&root, &start, &end, &doubled).is_err());
            let mut shifted = rows.clone();
            shifted[i].0 = shifted[i].0.wrapping_add(1);
            prop_assert!(proof.verify(&root, &start, &end, &shifted).is_err());
        }
    }
}
