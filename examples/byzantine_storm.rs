//! Byzantine storm: every misbehaviour model at once, plus forensics.
//!
//! The `byzantine_storm` scenario puts half the slave population into
//! misbehaviour — consistent liars, an inconsistent liar, a stale server,
//! and a refuser — while clients keep reading.  A runner probe dumps the
//! evidence log afterwards: each exclusion is backed by a signed pledge
//! that verifies offline ("irrefutable proof", Section 3.3), which is
//! what the paper proposes taking to court.
//!
//! Run with: `cargo run --release --example byzantine_storm`

use secure_replication::core::scenario::{registry, Runner};
use secure_replication::sim::NodeId;

type EvidenceRow = (NodeId, String, u64, String, &'static str);

fn main() {
    let spec = registry::lookup("byzantine_storm").expect("registered scenario");
    let n_masters = spec.config.n_masters;
    let behaviors = spec
        .behaviors
        .materialize(spec.config.n_slaves)
        .expect("valid roster");

    println!("slave roster:");
    for (i, b) in behaviors.iter().enumerate() {
        println!("  slave {i}: {b:?}");
    }
    println!(
        "\nrunning {} simulated seconds under attack ...",
        spec.duration.as_secs_f64()
    );

    // Forensics gathered by the end-of-run probe.
    let mut evidence: Vec<EvidenceRow> = Vec::new();
    let mut survivors: Vec<(usize, Vec<NodeId>)> = Vec::new();

    let report = Runner::new(spec)
        .probe(|sys, _record| {
            for rank in 0..n_masters {
                let entries = sys.with_master(rank, |m| {
                    m.evidence_log()
                        .iter()
                        .map(|e| {
                            (
                                e.pledge.slave,
                                format!("{:?}", e.discovery),
                                e.pledge.stamp.version,
                                e.found_at.to_string(),
                                e.pledge.query.kind(),
                            )
                        })
                        .collect::<Vec<_>>()
                });
                evidence.extend(entries);
                let slaves = sys.with_master(rank, |m| m.slaves().to_vec());
                survivors.push((rank, slaves));
            }
        })
        .run()
        .expect("scenario runs");

    let stats = &report.cells[0].runs[0].stats;
    println!("\n{}", stats.render());

    println!("\n--- evidence log (verifies offline against slave keys + snapshots) ---");
    for (i, (slave, discovery, version, at, kind)) in evidence.iter().enumerate() {
        println!(
            "  [{}] slave {slave:?} caught ({discovery}) at {at}: wrong {kind} answer for content version {version}",
            i + 1
        );
    }
    if evidence.is_empty() {
        println!("  (no convictions this run — increase duration or check probability)");
    }

    println!("\nsurviving slave set per master:");
    for (rank, slaves) in &survivors {
        println!("  master {rank}: {slaves:?}");
    }
    println!(
        "\nhonest slaves are never convicted: a client cannot frame a slave without \
         forging its signature (property-tested in crates/core/tests/proptests.rs)."
    );
}
