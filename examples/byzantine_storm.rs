//! Byzantine storm: every misbehaviour model at once, plus forensics.
//!
//! Half the slave population misbehaves — consistent liars, an
//! inconsistent liar, a stale server, and a refuser — while clients keep
//! reading.  Afterwards we dump the evidence log: each exclusion is backed
//! by a signed pledge that verifies offline ("irrefutable proof",
//! Section 3.3), which is what the paper proposes taking to court.
//!
//! Run with: `cargo run --release --example byzantine_storm`

use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::SimDuration;

fn main() {
    let config = SystemConfig {
        n_masters: 3,
        n_slaves: 8,
        n_clients: 16,
        double_check_prob: 0.08,
        audit_fraction: 1.0,
        seed: 666,
        ..SystemConfig::default()
    };

    let behaviors = vec![
        SlaveBehavior::ConsistentLiar { prob: 0.5, collude: false },
        SlaveBehavior::ConsistentLiar { prob: 0.1, collude: false },
        SlaveBehavior::InconsistentLiar { prob: 0.3 },
        SlaveBehavior::StaleServer { freeze_at: 4 },
        SlaveBehavior::Refuser { prob: 0.4 },
        SlaveBehavior::Honest,
        SlaveBehavior::Honest,
        SlaveBehavior::Honest,
    ];
    println!("slave roster:");
    for (i, b) in behaviors.iter().enumerate() {
        println!("  slave {i}: {b:?}");
    }

    let workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    let mut system = SystemBuilder::new(config)
        .behaviors(behaviors)
        .workload(workload)
        .build();

    println!("\nrunning 120 simulated seconds under attack ...");
    system.run_for(SimDuration::from_secs(120));

    let stats = system.stats();
    println!("\n{}", stats.render());

    // Forensics: collect each master's evidence log.
    println!("\n--- evidence log (verifies offline against slave keys + snapshots) ---");
    let mut total = 0usize;
    for rank in 0..3 {
        let entries = system.with_master(rank, |m| {
            m.evidence_log()
                .iter()
                .map(|e| {
                    (
                        e.pledge.slave,
                        e.discovery,
                        e.pledge.stamp.version,
                        e.found_at,
                        e.pledge.query.kind(),
                    )
                })
                .collect::<Vec<_>>()
        });
        for (slave, discovery, version, at, kind) in entries {
            total += 1;
            println!(
                "  [{total}] slave {slave:?} caught ({discovery:?}) at {at}: wrong {kind} answer for content version {version}"
            );
        }
    }
    if total == 0 {
        println!("  (no convictions this run — increase duration or check probability)");
    }

    // Survivors.
    println!("\nsurviving slave set per master:");
    for rank in 0..3 {
        let slaves = system.with_master(rank, |m| m.slaves().to_vec());
        println!("  master {rank}: {slaves:?}");
    }
    println!(
        "\nhonest slaves are never convicted: a client cannot frame a slave without \
         forging its signature (property-tested in crates/core/tests/proptests.rs)."
    );
}
