//! CDN catalogue: the paper's Section 6 motivating scenario.
//!
//! "One possibility is having the organization that owns the data content
//! provide the master servers, while the CDN provides the slaves" — an
//! e-commerce product catalogue replicated over a CDN whose edge nodes the
//! owner does not control.  Content changes slowly (price updates), reads
//! vastly outnumber writes, and a handful of edge nodes misbehave.
//!
//! The `cdn_catalog` scenario runs two compressed shopping days with a
//! checkpoint at the day boundary; per-day numbers fall out of the run
//! record's checkpoint snapshots.
//!
//! Run with: `cargo run --release --example cdn_catalog`

use secure_replication::core::scenario::{registry, Runner};
use secure_replication::core::SystemStats;

fn day_summary(day: usize, stats: &SystemStats) {
    println!(
        "\n--- end of day {day} ---\n\
         catalogue reads accepted: {} (of {} issued)\n\
         price/stock updates committed: {}\n\
         compromised-node lies told: {}, slipped past clients: {}\n\
         discoveries: {} immediate + {} delayed; edge nodes excluded: {}",
        stats.reads_accepted,
        stats.reads_issued,
        stats.writes_committed,
        stats.lies_told,
        stats.wrong_accepted,
        stats.discovery_immediate,
        stats.discovery_delayed,
        stats.exclusions,
    );
}

fn main() {
    let spec = registry::lookup("cdn_catalog").expect("registered scenario");
    let n_masters = spec.config.n_masters;

    println!("simulating two compressed shopping days on the CDN ...");
    let report = Runner::new(spec).run().expect("scenario runs");

    let run = &report.cells[0].runs[0];
    // Day 1 = the checkpoint at t=120s; day 2 = the final stats.
    if let Some(cp) = run.checkpoints.first() {
        day_summary(1, &cp.stats);
    }
    day_summary(2, &run.stats);

    let final_stats = &run.stats;
    println!(
        "\nread latency: p50 = {} µs, p99 = {} µs",
        final_stats.read_latency.p50, final_stats.read_latency.p99
    );
    println!(
        "audit: checked {} pledges, cache hits {}, final backlog {}",
        final_stats.audit_checked, final_stats.audit_cache_hits, final_stats.audit_backlog
    );
    println!(
        "\nbottom line: the owner ran {} trusted machines while the CDN served {} reads;\n\
         misbehaving edge nodes were evicted with signed pledges as evidence.",
        n_masters, final_stats.reads_accepted
    );
}
