//! CDN catalogue: the paper's Section 6 motivating scenario.
//!
//! "One possibility is having the organization that owns the data content
//! provide the master servers, while the CDN provides the slaves" — an
//! e-commerce product catalogue replicated over a CDN whose edge nodes the
//! owner does not control.  Content changes slowly (price updates), reads
//! vastly outnumber writes, and a handful of edge nodes misbehave.
//!
//! Run with: `cargo run --release --example cdn_catalog`

use secure_replication::core::dataset::DatasetSpec;
use secure_replication::core::{
    DiurnalPattern, QueryMix, SlaveBehavior, SystemBuilder, SystemConfig, Workload,
};
use secure_replication::sim::{SimDuration, SimTime};

fn main() {
    let config = SystemConfig {
        n_masters: 4,   // Owner-run trusted core (rank 3 audits).
        n_slaves: 10,   // CDN edge nodes.
        n_clients: 20,  // Shoppers.
        double_check_prob: 0.01,
        max_latency: SimDuration::from_millis(2_000),
        seed: 7,
        ..SystemConfig::default()
    };

    // The CDN is mostly honest; one node was compromised and lies subtly,
    // another is broken and serves stale catalogue pages.
    let mut behaviors = vec![SlaveBehavior::Honest; 10];
    behaviors[3] = SlaveBehavior::ConsistentLiar {
        prob: 0.1,
        collude: false,
    };
    behaviors[7] = SlaveBehavior::StaleServer { freeze_at: 4 };

    let workload = Workload {
        dataset: DatasetSpec {
            n_products: 800,
            n_reviews: 1_600,
            n_files: 50,
            lines_per_file: 25,
            seed: 7,
        },
        reads_per_sec: 6.0,
        writes_per_sec: 0.3, // Occasional price/stock updates.
        writer_fraction: 0.1,
        mix: QueryMix::catalogue(),
        diurnal: Some(DiurnalPattern {
            period: SimDuration::from_secs(120), // Compressed shopping day.
            trough: 0.15,
        }),
        ..Workload::default()
    };

    let mut system = SystemBuilder::new(config)
        .behaviors(behaviors)
        .workload(workload)
        .build();

    println!("simulating two compressed shopping days on the CDN ...");
    for day in 1..=2 {
        system.run_until(SimTime::from_secs(120 * day));
        let stats = system.stats();
        println!(
            "\n--- end of day {day} ---\n\
             catalogue reads accepted: {} (of {} issued)\n\
             price/stock updates committed: {}\n\
             compromised-node lies told: {}, slipped past clients: {}\n\
             discoveries: {} immediate + {} delayed; edge nodes excluded: {}",
            stats.reads_accepted,
            stats.reads_issued,
            stats.writes_committed,
            stats.lies_told,
            stats.wrong_accepted,
            stats.discovery_immediate,
            stats.discovery_delayed,
            stats.exclusions,
        );
    }

    let final_stats = system.stats();
    println!("\nread latency: p50 = {} µs, p99 = {} µs", final_stats.read_latency.p50, final_stats.read_latency.p99);
    println!(
        "audit: checked {} pledges, cache hits {}, final backlog {}",
        final_stats.audit_checked, final_stats.audit_cache_hits, final_stats.audit_backlog
    );
    println!(
        "\nbottom line: the owner ran {} trusted machines while the CDN served {} reads;\n\
         misbehaving edge nodes were evicted with signed pledges as evidence.",
        4, final_stats.reads_accepted
    );
}
