//! Population-scale churn: the registry's biggest deployment.
//!
//! Fetches the `churn_100k` scenario — a 100k-row catalogue sharded four
//! ways, 12 masters, 16 replicas, and 2 000 clients of which half churn
//! (leave and rejoin through the full setup phase) all run long, under a
//! diurnal read mix — runs it, and prints the population and scheduler
//! headlines: churn volume, read health, event-queue peak, and how much
//! payload memory the shared (`Arc`) multicast path saved over deep
//! per-recipient copies.
//!
//! Run with: `cargo run --release --example churn_100k`
//! (`CHURN_SIM_SECS=10` shortens the simulated minute.)

use secure_replication::core::scenario::{registry, Runner};
use secure_replication::sim::SimDuration;

fn main() {
    let mut spec = registry::lookup("churn_100k").expect("registered scenario");

    if let Some(secs) = std::env::var("CHURN_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        spec.duration = SimDuration::from_secs(secs);
        spec.checkpoints.retain(|c| *c < spec.duration);
    }
    println!(
        "running {} simulated seconds of {} ...",
        spec.duration.as_secs_f64(),
        spec.name
    );

    let started = std::time::Instant::now();
    let report = Runner::new(spec).run().expect("scenario runs");
    let wall = started.elapsed();
    let stats = &report.cells[0].runs[0].stats;

    println!("\n{}", stats.render());
    println!(
        "\npopulation: {} leaves, {} rejoins (each rejoin redoes setup)",
        stats.churn_leaves, stats.churn_joins
    );
    println!(
        "scheduler:  {} events, queue peak {}, {} slab slots, wall {:.1}s \
         ({:.0} events/s)",
        stats.sim_events,
        stats.sim_queue_peak,
        stats.sim_queue_slots,
        wall.as_secs_f64(),
        stats.sim_events as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "payloads:   {:.1} MiB logical vs {:.1} MiB resident ({:.2}x shared)",
        stats.sim_msg_bytes_logical as f64 / (1024.0 * 1024.0),
        stats.sim_msg_bytes_resident as f64 / (1024.0 * 1024.0),
        stats.msg_sharing_ratio(),
    );
}
