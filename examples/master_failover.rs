//! Master failover: crash the trusted core, watch it heal.
//!
//! Section 3: masters gossip their slave lists "so in the event of a
//! master crash, the remaining ones will divide its slave set", and
//! clients of the dead master redo the setup phase.  The
//! `master_failover` scenario crashes two masters in sequence — including
//! the broadcast sequencer — with checkpoints before and between the
//! failures; a checkpoint probe reports ownership, election, and client
//! recovery at each stage.
//!
//! Run with: `cargo run --release --example master_failover`

use secure_replication::core::scenario::{registry, RunRecord, Runner};
use secure_replication::core::System;

fn report_stage(system: &mut System, label: &str, n_masters: usize) {
    println!("\n--- {label} ---");
    for rank in 0..n_masters {
        if system.world.is_crashed(system.masters[rank]) {
            println!("  master {rank}: CRASHED");
            continue;
        }
        let (slaves, auditor, version) =
            system.with_master(rank, |m| (m.slaves().len(), m.is_auditor(), m.version()));
        println!(
            "  master {rank}: {slaves} slaves, version {version}{}",
            if auditor { ", elected auditor" } else { "" }
        );
    }
    let stats = system.stats();
    println!(
        "  reads accepted so far: {}, writes committed: {}, client re-setups: {}",
        stats.reads_accepted,
        stats.writes_committed,
        stats.per_client.iter().map(|c| c.re_setups).sum::<u64>()
    );
}

fn main() {
    let spec = registry::lookup("master_failover").expect("registered scenario");
    let n_masters = spec.config.n_masters;

    let stage_label = |sys: &mut System, i: usize, _rec: &mut RunRecord| {
        let label = match i {
            0 => "t=15s: steady state",
            1 => "t=40s: after the sequencer (master 0) crashed",
            _ => "checkpoint",
        };
        report_stage(sys, label, n_masters);
    };

    let report = Runner::new(spec)
        .checkpoint_probe(stage_label)
        .probe(move |sys, _rec| {
            report_stage(
                sys,
                "t=90s: after the auditor also crashed (new auditor elected)",
                n_masters,
            );
        })
        .run()
        .expect("scenario runs");

    let stats = &report.cells[0].runs[0].stats;
    println!(
        "\nafter losing 2 of 5 masters the service never stopped: {} reads accepted, \
         {} writes committed, read latency p99 = {} µs.",
        stats.reads_accepted, stats.writes_committed, stats.read_latency.p99
    );
    println!(
        "every slave is still owned by exactly one surviving master, and the survivors \
         agree on the same totally-ordered write history."
    );
}
