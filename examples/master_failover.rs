//! Master failover: crash the trusted core, watch it heal.
//!
//! Section 3: masters gossip their slave lists "so in the event of a
//! master crash, the remaining ones will divide its slave set", and
//! clients of the dead master redo the setup phase.  This example crashes
//! two masters in sequence — including the broadcast sequencer — and
//! reports ownership, election, and client recovery after each failure.
//!
//! Run with: `cargo run --release --example master_failover`

use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::SimTime;

fn report(system: &mut secure_replication::core::System, label: &str, n_masters: usize) {
    println!("\n--- {label} ---");
    for rank in 0..n_masters {
        if system.world.is_crashed(system.masters[rank]) {
            println!("  master {rank}: CRASHED");
            continue;
        }
        let (slaves, auditor, version) =
            system.with_master(rank, |m| (m.slaves().len(), m.is_auditor(), m.version()));
        println!(
            "  master {rank}: {slaves} slaves, version {version}{}",
            if auditor { ", elected auditor" } else { "" }
        );
    }
    let stats = system.stats();
    println!(
        "  reads accepted so far: {}, writes committed: {}, client re-setups: {}",
        stats.reads_accepted,
        stats.writes_committed,
        stats.per_client.iter().map(|c| c.re_setups).sum::<u64>()
    );
}

fn main() {
    let n_masters = 5;
    let config = SystemConfig {
        n_masters,
        n_slaves: 8,
        n_clients: 12,
        double_check_prob: 0.02,
        seed: 55,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 5.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    let mut system = SystemBuilder::new(config)
        .behaviors(vec![SlaveBehavior::Honest; 8])
        .workload(workload)
        .build();

    // Failure schedule: the sequencer dies at t=20s, the elected auditor
    // at t=50s.
    system.crash_master_at(SimTime::from_secs(20), 0);
    system.crash_master_at(SimTime::from_secs(50), n_masters - 1);

    system.run_until(SimTime::from_secs(15));
    report(&mut system, "t=15s: steady state", n_masters);

    system.run_until(SimTime::from_secs(40));
    report(
        &mut system,
        "t=40s: after the sequencer (master 0) crashed",
        n_masters,
    );

    system.run_until(SimTime::from_secs(90));
    report(
        &mut system,
        "t=90s: after the auditor also crashed (new auditor elected)",
        n_masters,
    );

    let stats = system.stats();
    println!(
        "\nafter losing 2 of 5 masters the service never stopped: {} reads accepted, \
         {} writes committed, read latency p99 = {} µs.",
        stats.reads_accepted, stats.writes_committed, stats.read_latency.p99
    );
    println!(
        "every slave is still owned by exactly one surviving master, and the survivors \
         agree on the same totally-ordered write history."
    );
}
