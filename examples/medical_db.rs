//! Medical database: the Section 4 "security sensitive reads" variant.
//!
//! An academic/medical database (another of the paper's Section 6 target
//! applications): most queries are routine look-ups that untrusted
//! replicas may serve, but a fraction — say, queries that inform treatment
//! decisions — are marked *security sensitive* and "executed only by the
//! trusted servers (which guarantees that clients always get correct
//! results)".
//!
//! Run with: `cargo run --release --example medical_db`

use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::SimDuration;

fn run(sensitive_fraction: f64) -> (u64, u64, u64, f64) {
    let config = SystemConfig {
        n_masters: 3,
        n_slaves: 6,
        n_clients: 12,
        sensitive_fraction,
        // Checks off so the table isolates what the variant itself buys.
        double_check_prob: 0.0,
        audit_fraction: 0.0,
        seed: 99,
        ..SystemConfig::default()
    };
    // A compromised replica lies on a quarter of its answers.
    let mut behaviors = vec![SlaveBehavior::Honest; 6];
    behaviors[2] = SlaveBehavior::ConsistentLiar {
        prob: 0.25,
        collude: false,
    };
    let workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.05,
        ..Workload::default()
    };
    let mut system = SystemBuilder::new(config)
        .behaviors(behaviors)
        .workload(workload)
        .build();
    system.run_for(SimDuration::from_secs(60));
    let stats = system.stats();
    let nm = stats.master_utilisation.len();
    let trusted_cpu =
        stats.master_utilisation[..nm - 1].iter().sum::<f64>() / (nm - 1) as f64 * 100.0;
    (
        stats.reads_sensitive,
        stats.reads_accepted,
        stats.wrong_accepted,
        trusted_cpu,
    )
}

fn main() {
    println!("hospital database with one compromised replica (lies on 25% of reads)");
    println!("sweep: what fraction of queries do clinicians mark sensitive?\n");
    println!(
        "{:>20} {:>16} {:>15} {:>15} {:>18}",
        "sensitive fraction", "sensitive reads", "total accepted", "wrong accepted", "master CPU (%)"
    );
    for &sf in &[0.0, 0.25, 0.5, 1.0] {
        let (sensitive, accepted, wrong, cpu) = run(sf);
        println!(
            "{sf:>20.2} {sensitive:>16} {accepted:>15} {wrong:>15} {cpu:>18.2}"
        );
    }
    println!(
        "\nreading the table: every wrong answer came through the *normal* path; \n\
         sensitive queries were answered by trusted masters and were always correct.\n\
         The price is the trusted-CPU column — exactly the paper's stated trade-off.\n\
         (In production you would also keep double-checking and auditing on; they are\n\
         disabled here so the variant's effect is visible in isolation.)"
    );
}
