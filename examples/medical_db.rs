//! Medical database: the Section 4 "security sensitive reads" variant.
//!
//! An academic/medical database (another of the paper's Section 6 target
//! applications): most queries are routine look-ups that untrusted
//! replicas may serve, but a fraction — say, queries that inform treatment
//! decisions — are marked *security sensitive* and "executed only by the
//! trusted servers (which guarantees that clients always get correct
//! results)".
//!
//! The `medical_db` scenario sweeps the sensitive fraction with one
//! compromised replica; the whole table is one `Runner` invocation.
//!
//! Run with: `cargo run --release --example medical_db`

use secure_replication::core::scenario::{registry, Runner};

fn main() {
    let spec = registry::lookup("medical_db").expect("registered scenario");

    println!("hospital database with one compromised replica (lies on 25% of reads)");
    println!("sweep: what fraction of queries do clinicians mark sensitive?\n");
    println!(
        "{:>20} {:>16} {:>15} {:>15} {:>18}",
        "sensitive fraction", "sensitive reads", "total accepted", "wrong accepted", "master CPU (%)"
    );

    let report = Runner::new(spec).run().expect("scenario runs");
    for cell in &report.cells {
        let sf = cell.coord("sensitive fraction").unwrap_or(0.0);
        let stats = &cell.runs[0].stats;
        let nm = stats.master_utilisation.len();
        let trusted_cpu =
            stats.master_utilisation[..nm - 1].iter().sum::<f64>() / (nm - 1) as f64 * 100.0;
        println!(
            "{sf:>20.2} {:>16} {:>15} {:>15} {trusted_cpu:>18.2}",
            stats.reads_sensitive, stats.reads_accepted, stats.wrong_accepted
        );
    }

    println!(
        "\nreading the table: every wrong answer came through the *normal* path; \n\
         sensitive queries were answered by trusted masters and were always correct.\n\
         The price is the trusted-CPU column — exactly the paper's stated trade-off.\n\
         (In production you would also keep double-checking and auditing on; they are\n\
         disabled here so the variant's effect is visible in isolation.)"
    );
}
