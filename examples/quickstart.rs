//! Quickstart: the smallest end-to-end deployment.
//!
//! Fetches the `quickstart` scenario from the registry — a 3-master /
//! 4-slave / 8-client system over the default catalogue content with one
//! subtly lying slave — runs 30 simulated seconds of mixed reads and
//! writes through the scenario [`Runner`], and prints the run statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use secure_replication::core::scenario::{registry, Runner};
use secure_replication::sim::SimDuration;

fn main() {
    let mut spec = registry::lookup("quickstart").expect("registered scenario");

    // The examples smoke test shortens the run; humans get the full 30 s.
    if let Some(secs) = std::env::var("QUICKSTART_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        spec.duration = SimDuration::from_secs(secs);
    }
    println!(
        "running {} simulated seconds ...",
        spec.duration.as_secs_f64()
    );

    let report = Runner::new(spec).run().expect("scenario runs");
    let stats = &report.cells[0].runs[0].stats;
    println!("\n{}", stats.render());

    if stats.exclusions > 0 {
        println!(
            "\nthe lying slave was caught and excluded; {} wrong answers were accepted \
             before corrective action, every one of them visible to the audit.",
            stats.wrong_accepted
        );
    } else {
        println!(
            "\nthe liar survived this short run (it told {} lies); run longer or raise \
             double_check_prob to catch it faster — that trade-off is experiment E1.",
            stats.lies_told
        );
    }
}
