//! Quickstart: the smallest end-to-end deployment.
//!
//! Builds a 3-master / 4-slave / 8-client system over the default
//! catalogue content, runs 30 simulated seconds of mixed reads and writes,
//! and prints the run statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::SimDuration;

fn main() {
    let config = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 8,
        double_check_prob: 0.05, // 5% of reads are double-checked.
        seed: 2003,              // HotOS IX.
        ..SystemConfig::default()
    };

    // One slave lies on 20% of reads — with a *self-consistent* pledge, so
    // only double-checking or the audit can catch it.
    let mut behaviors = vec![SlaveBehavior::Honest; 4];
    behaviors[0] = SlaveBehavior::ConsistentLiar {
        prob: 0.2,
        collude: false,
    };

    let mut system = SystemBuilder::new(config)
        .behaviors(behaviors)
        .workload(Workload::default())
        .build();

    // The examples smoke test shortens the run; humans get the full 30 s.
    let sim_secs: u64 = std::env::var("QUICKSTART_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    println!("running {sim_secs} simulated seconds ...");
    system.run_for(SimDuration::from_secs(sim_secs));

    let stats = system.stats();
    println!("\n{}", stats.render());

    if stats.exclusions > 0 {
        println!(
            "\nthe lying slave was caught and excluded; {} wrong answers were accepted \
             before corrective action, every one of them visible to the audit.",
            stats.wrong_accepted
        );
    } else {
        println!(
            "\nthe liar survived this short run (it told {} lies); run longer or raise \
             double_check_prob to catch it faster — that trade-off is experiment E1.",
            stats.lies_told
        );
    }
}
