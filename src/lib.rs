//! Facade crate for the Secure Data Replication workspace.
//!
//! Re-exports every subsystem so examples, integration tests, and downstream
//! users can depend on a single crate:
//!
//! * [`crypto`] — hashes, hash-based signatures, certificates.
//! * [`sim`] — deterministic discrete-event simulator (network, CPU, faults).
//! * [`store`] — the replicated data content: documents, indexes, queries.
//! * [`broadcast`] — reliable total-order broadcast for the master set.
//! * [`core`] — the paper's system: masters, slaves, clients, auditor.
//! * [`baselines`] — state-signing and state-machine-replication comparators.
//!
//! See `README.md` for a tour and `DESIGN.md` for the full inventory.

#![forbid(unsafe_code)]

pub use sdr_baselines as baselines;
pub use sdr_broadcast as broadcast;
pub use sdr_core as core;
pub use sdr_crypto as crypto;
pub use sdr_sim as sim;
pub use sdr_store as store;
