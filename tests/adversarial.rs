//! Adversarial integration tests: framing, refusal, lossy networks, and
//! combined failure modes.

use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::{LinkModel, NetworkConfig, SimDuration};

fn base_cfg(seed: u64) -> SystemConfig {
    SystemConfig {
        n_masters: 3,
        n_slaves: 5,
        n_clients: 8,
        seed,
        ..SystemConfig::default()
    }
}

/// A refuser (DoS) slave degrades service but never causes wrong results,
/// and honest retries keep the overall acceptance rate high.
#[test]
fn refuser_hurts_liveness_not_safety() {
    let cfg = base_cfg(31);
    let mut behaviors = vec![SlaveBehavior::Honest; 5];
    behaviors[0] = SlaveBehavior::Refuser { prob: 0.6 };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(behaviors)
        .workload(Workload::default())
        .build();
    sys.run_for(SimDuration::from_secs(40));
    let stats = sys.stats();

    assert!(
        sys.world.metrics().counter("slave.refused_malicious") > 0,
        "refuser never refused"
    );
    assert_eq!(stats.wrong_accepted, 0);
    assert_eq!(stats.lies_told, 0);
    // Clients whose slave refuses retry and mostly succeed.
    assert!(
        stats.reads_accepted as f64 >= 0.6 * stats.reads_issued as f64,
        "acceptance collapsed: {}",
        stats.render()
    );
}

/// The protocol survives a lossy network: reads retry, the broadcast
/// retransmits, and no replica diverges.
#[test]
fn lossy_network_degrades_gracefully() {
    let cfg = base_cfg(32);
    let net = NetworkConfig::new(
        LinkModel::wan(SimDuration::from_millis(10)).with_loss(0.05),
    );
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 5])
        .workload(Workload::default())
        .network(net)
        .build();
    sys.run_for(SimDuration::from_secs(45));
    let stats = sys.stats();

    assert!(
        sys.world.metrics().counter("sim.lost_messages") > 0,
        "loss model inactive"
    );
    assert!(stats.reads_accepted > 0);
    assert_eq!(stats.wrong_accepted, 0);
    assert!(stats.writes_committed > 0, "writes must survive loss");
    // Masters still agree.
    let d0 = sys.with_master(0, |m| m.state_digest());
    let d1 = sys.with_master(1, |m| m.state_digest());
    assert_eq!(d0, d1);
}

/// Combined stress: liars + a master crash + loss, all at once.  Safety
/// invariants hold: nothing wrong is accepted without eventually being
/// detectable, honest slaves are never excluded.
#[test]
fn combined_stress_keeps_invariants() {
    let mut cfg = base_cfg(33);
    cfg.n_masters = 4;
    cfg.double_check_prob = 0.1;
    let mut behaviors = vec![SlaveBehavior::Honest; 5];
    behaviors[1] = SlaveBehavior::ConsistentLiar {
        prob: 0.4,
        collude: false,
    };
    behaviors[4] = SlaveBehavior::InconsistentLiar { prob: 0.3 };
    let net = NetworkConfig::new(
        LinkModel::wan(SimDuration::from_millis(12)).with_loss(0.02),
    );
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(behaviors)
        .workload(Workload::default())
        .network(net)
        .build();
    sys.crash_master_at(secure_replication::sim::SimTime::from_secs(25), 1);
    sys.run_for(SimDuration::from_secs(80));
    let stats = sys.stats();

    // Safety: honest slaves (indices 0, 2, 3) never excluded.
    for i in [0usize, 2, 3] {
        assert!(
            !sys.with_slave(i, |s| s.is_excluded()),
            "honest slave {i} was excluded"
        );
    }
    // Wrong results only from the consistent liar, bounded by its lies.
    assert!(stats.wrong_accepted <= stats.lies_told);
    // The system made progress through all of it.
    assert!(stats.reads_accepted > 100, "{}", stats.render());
}

/// Write access control: a deny-all policy rejects every client write
/// while reads continue unharmed.
#[test]
fn acl_blocks_writes() {
    use secure_replication::core::acl::WritePolicy;
    let cfg = base_cfg(34);
    let workload = Workload {
        writes_per_sec: 2.0,
        writer_fraction: 0.5,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 5])
        .workload(workload)
        .policy(WritePolicy::deny_all())
        .build();
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert_eq!(stats.writes_committed, 0);
    assert!(stats.writes_denied > 0, "no denials recorded");
    assert!(stats.reads_accepted > 0);
}
