//! Compile-time contract for the facade's public API.
//!
//! The `secure_replication` crate promises that every subsystem is
//! reachable through a stable re-export path.  Each alias below fails to
//! compile if a documented type moves or disappears, so renames surface
//! here as a reviewable diff rather than as downstream breakage.

#![allow(dead_code)]

use secure_replication::{baselines, broadcast, core, crypto, sim, store};

// crypto — hashes, signatures, certificates.
type Sha1 = crypto::Sha1;
type Sha256 = crypto::Sha256;
type Hash160 = crypto::Hash160;
type Hash256 = crypto::Hash256;
type HmacDrbg = crypto::HmacDrbg;
type MerkleTree = crypto::MerkleTree;
type MerkleProof = crypto::MerkleProof;
type WotsKeypair = crypto::WotsKeypair;
type MssKeypair = crypto::MssKeypair;
type HmacSigner = crypto::HmacSigner;
type MssSigner = crypto::MssSigner;
type Certificate = crypto::Certificate;
const HMAC_SHA256: fn(&[u8], &[u8]) -> crypto::Hash256 = crypto::hmac_sha256;

// sim — deterministic discrete-event simulator.
type World<M> = sim::World<M>;
type NodeId = sim::NodeId;
type SimTime = sim::SimTime;
type SimDuration = sim::SimDuration;
type CostModel = sim::CostModel;
type NetworkConfig = sim::NetworkConfig;
type Metrics = sim::Metrics;

// store — the replicated data content.
type Database = store::Database;
type Document = store::Document;
type Value = store::Value;
type Query = store::Query;
type QueryResult = store::QueryResult;
type Pattern = store::Pattern;
type Predicate = store::Predicate;
type UpdateOp = store::UpdateOp;
type QueryCache = store::QueryCache;
type SnapshotStore = store::SnapshotStore;

// broadcast — total order for the master set.
type TotalOrder<T> = broadcast::TotalOrder<T>;
type TobConfig = broadcast::TobConfig;
type View = broadcast::View;
type MemberId = broadcast::MemberId;

// core — the paper's system.
type System = core::System;
type SystemBuilder = core::SystemBuilder;
type ShardMap = core::ShardMap;
type SystemConfig = core::SystemConfig;
type SlaveBehavior = core::SlaveBehavior;
type Workload = core::Workload;
type Pledge = core::Pledge;
type Evidence = core::Evidence;
type VersionStamp = core::VersionStamp;
type SystemStats = core::SystemStats;
type HashAlgo = core::HashAlgo;
type ReadLevel = core::ReadLevel;

// core::scenario — the declarative experiment front door.
type ScenarioSpec = core::scenario::ScenarioSpec;
type BehaviorSpec = core::scenario::BehaviorSpec;
type NetworkSpec = core::scenario::NetworkSpec;
type LinkSpec = core::scenario::LinkSpec;
type CrashSpec = core::scenario::CrashSpec;
type Grid = core::scenario::Grid;
type SweepAxis = core::scenario::SweepAxis;
type Param = core::scenario::Param;
type Runner<'a> = core::scenario::Runner<'a>;
type RunReport = core::scenario::RunReport;
type CellReport = core::scenario::CellReport;
type RunRecord = core::scenario::RunRecord;
const REGISTRY_LOOKUP: fn(&str) -> Option<core::scenario::ScenarioSpec> =
    core::scenario::registry::lookup;

// baselines — comparator schemes.
type SchemeCosts = baselines::SchemeCosts;
type SmrCluster = baselines::SmrCluster;
type SignedState = baselines::SignedState;

/// The traits clients implement or consume must stay object-reachable too.
fn _signer_is_usable(
    s: &mut crypto::HmacSigner,
) -> Result<crypto::Signature, crypto::CryptoError> {
    use crypto::Signer;
    s.sign(b"api contract")
}

#[test]
fn facade_re_exports_resolve() {
    // The real assertions are the aliases above, checked by the compiler;
    // this test exists so the target shows up in `cargo test` output.
    use crypto::Digest;
    let digest = crypto::Sha256::digest(b"secure data replication");
    assert_eq!(digest, crypto::Sha256::digest(b"secure data replication"));
}
