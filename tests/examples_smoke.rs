//! Smoke test: every example builds, and `quickstart` runs to completion.
//!
//! Guards the README's promises — `cargo run --example quickstart` must
//! always work from a clean checkout.  Uses the same `cargo` binary that
//! is running this test, against this workspace.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

#[test]
fn examples_build_and_quickstart_runs() {
    // Build all five examples in one pass (debug: shares the work this
    // test run already did).
    let build = cargo()
        .args(["build", "--examples", "-p", "secure_replication"])
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        build.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    // A short quickstart run must reach the success banner.  2 simulated
    // seconds keeps the debug-profile run fast; the example itself defaults
    // to 30 s when no override is given.
    let run = cargo()
        .args(["run", "-q", "--example", "quickstart", "-p", "secure_replication"])
        .env("QUICKSTART_SIM_SECS", "2")
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        run.status.success(),
        "quickstart exited nonzero:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains("running") && stdout.contains("simulated second"),
        "quickstart output missing expected banner:\n{stdout}"
    );
}
