//! Cross-crate integration: real MSS signatures end-to-end, offline
//! evidence verification, and the facade crate's public API surface.

use secure_replication::core::evidence::{Discovery, Evidence};
use secure_replication::core::messages::VersionStamp;
use secure_replication::core::pledge::{Pledge, ResultHash};
use secure_replication::core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::crypto::{MssSigner, SignatureScheme, Signer};
use secure_replication::sim::{NodeId, SimDuration, SimTime};
use secure_replication::store::{execute, Database, Document, Query, UpdateOp};

/// A short deployment using the *real* Merkle signature scheme everywhere
/// (not the HMAC stand-in): pledges, stamps, and certificates all carry
/// hash-based signatures, and the protocol still works.
#[test]
fn real_mss_signatures_end_to_end() {
    let cfg = SystemConfig {
        n_masters: 2,
        n_slaves: 2,
        n_clients: 3,
        signer: SignatureScheme::Mss,
        mss_height: 10, // 1024 signatures per node: plenty for 10 s.
        double_check_prob: 0.1,
        seed: 5,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 2.0,
        writes_per_sec: 0.1,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(10));
    let stats = sys.stats();
    assert!(stats.reads_accepted > 10, "{}", stats.render());
    assert_eq!(stats.wrong_accepted, 0);
    // Signature failures would show up as rejections.
    assert_eq!(sys.world.metrics().counter("read.rejected.sig"), 0);
    assert_eq!(sys.world.metrics().counter("read.rejected.stamp_sig"), 0);
}

/// Evidence produced inside the system verifies *outside* it, using only
/// public crate APIs — the "take it to court" property.
#[test]
fn evidence_verifies_offline_with_mss() {
    // Reference content.
    let mut db = Database::new();
    db.apply_write(&[
        UpdateOp::CreateTable {
            table: "records".into(),
            indexes: vec![],
        },
        UpdateOp::Insert {
            table: "records".into(),
            key: 1,
            doc: Document::new().with("diagnosis", "benign"),
        },
    ])
    .expect("setup");

    let mut master = MssSigner::generate([1; 32], 4).expect("keygen");
    let mut slave = MssSigner::generate([2; 32], 4).expect("keygen");

    let query = Query::GetRow {
        table: "records".into(),
        key: 1,
    };
    let (correct, _) = execute(&db, &query).expect("query");
    // The slave lies: claims a different diagnosis.
    let lie = secure_replication::core::slave::corrupt(&correct, 3);

    let stamp = VersionStamp::build(
        db.version(),
        SimTime::from_millis(50),
        NodeId(0),
        &mut master,
    )
    .expect("stamp");
    let pledge = Pledge::build(
        query,
        ResultHash::of(&lie, secure_replication::core::HashAlgo::Sha1),
        stamp,
        NodeId(9),
        &mut slave,
    )
    .expect("pledge");

    let evidence = Evidence {
        pledge,
        correct_hash: ResultHash::of(&correct, secure_replication::core::HashAlgo::Sha1),
        discovery: Discovery::Delayed,
        found_at: SimTime::from_millis(500),
    };
    // An independent verifier holding only the slave's public key and a
    // replica at the right version convicts the slave.
    evidence
        .verify(&slave.public_key(), &db)
        .expect("conviction stands offline");

    // The same evidence against a *different* key (i.e. accusing an
    // innocent slave) fails.
    let innocent = MssSigner::generate([3; 32], 4).expect("keygen");
    assert!(evidence.verify(&innocent.public_key(), &db).is_err());
}

/// All replicas and the auditor's lagging copy converge to the same state
/// digest once the system quiesces.
#[test]
fn every_replica_converges_to_one_digest() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 5,
        n_clients: 6,
        seed: 17,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 3.0,
        writes_per_sec: 0.5,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 5])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(25));
    // Quiet period: no new writes land within max_latency spacing after
    // clients stop being exercised hard; give updates time to propagate.
    sys.run_for(SimDuration::from_secs(15));

    let reference = sys.with_master(0, |m| m.state_digest());
    for r in 1..3 {
        assert_eq!(sys.with_master(r, |m| m.state_digest()), reference);
    }
    for i in 0..5 {
        assert_eq!(
            sys.with_slave(i, |s| s.state_digest()),
            reference,
            "slave {i} diverged"
        );
    }
    let stats = sys.stats();
    assert!(stats.writes_committed >= 5, "want real write traffic");
}
