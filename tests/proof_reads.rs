//! End-to-end authenticated reads: the `proof_vs_pledge` scenario runs
//! from the registry, proof-verified static reads skip the auditor
//! entirely, computed queries still flow through pledge+audit, and a
//! lying slave's proof-path forgeries die at the client immediately.

use secure_replication::core::scenario::{
    registry, BehaviorSpec, Grid, Param, Runner, SweepAxis,
};
use secure_replication::core::{Msg, SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use secure_replication::sim::SimDuration;
use secure_replication::store::Query;

/// Runs a trimmed copy of the registered `proof_vs_pledge` scenario and
/// checks the headline property in its RunReport: with an all-static
/// mix and proofs on, the auditor sees *nothing*; with a mixed mix the
/// computed queries still go through pledge+audit; with proofs off the
/// proof path stays silent.
#[test]
fn proof_vs_pledge_report_shows_auditor_skipped() {
    let mut spec = registry::lookup("proof_vs_pledge").expect("registered scenario");
    // Trim for test time: honest slaves isolate the routing property
    // (lie handling is covered by `proof_path_rejects_lies_immediately`).
    spec.behaviors = BehaviorSpec::default();
    spec.duration = SimDuration::from_secs(10);
    spec.seeds = vec![1_259];
    spec.grid = Grid::cartesian(vec![
        SweepAxis::new(
            "static read fraction",
            Param::StaticReadFraction,
            &[1.0, 0.5],
        ),
        SweepAxis::new("proof reads", Param::ProofReads, &[1.0, 0.0]),
    ]);

    let report = Runner::new(spec).run().expect("scenario runs");
    assert_eq!(report.scenario, "proof_vs_pledge");
    assert_eq!(report.cells.len(), 4);

    for cell in &report.cells {
        let static_fraction = cell.coords[0].1;
        let proofs_on = cell.coords[1].1 != 0.0;
        let stats = &cell.runs[0].stats;
        assert!(stats.reads_accepted > 20, "starved cell: {}", stats.render());

        if !proofs_on {
            // Control: the proof path must stay completely silent.
            assert_eq!(stats.proof_reads_issued, 0, "{}", stats.render());
            assert_eq!(stats.proof_reads_accepted, 0);
            continue;
        }
        assert!(
            stats.proof_reads_accepted > 10,
            "proof path unused: {}",
            stats.render()
        );
        // Proof-verified reads never reach the double-check or audit
        // machinery, so auditor traffic is bounded by the *pledged*
        // acceptances alone.
        let pledged_accepted = stats.reads_accepted - stats.proof_reads_accepted;
        assert!(
            stats.audit_submitted <= pledged_accepted,
            "auditor saw proof reads: audit={} pledged={} ({})",
            stats.audit_submitted,
            pledged_accepted,
            stats.render()
        );
        if static_fraction == 1.0 {
            // Nothing pledged at all: the auditor is fully bypassed.
            assert_eq!(stats.audit_submitted, 0, "{}", stats.render());
            assert_eq!(stats.dc_sent, 0);
        } else {
            // Computed queries still flow through pledge+audit.
            assert!(stats.audit_submitted > 0, "{}", stats.render());
        }
    }
}

/// A slave that lies on every answer cannot survive the proof path: its
/// forgeries are rejected deterministically at the client (no audit
/// delay), and the read is retried — still on the proof path — at
/// another replica of the same shard (here the honest spare), so the
/// pledged fallback never needs to fire.
#[test]
fn proof_path_rejects_lies_immediately() {
    let cfg = SystemConfig {
        n_masters: 2,
        n_slaves: 2,
        n_clients: 4,
        double_check_prob: 0.0,
        audit_fraction: 0.0, // No detectors: the proof check stands alone.
        seed: 97,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.1,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![
            SlaveBehavior::ConsistentLiar {
                prob: 1.0,
                collude: false,
            },
            SlaveBehavior::Honest,
        ])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(15));
    let stats = sys.stats();

    assert!(stats.proof_reads_issued > 0, "{}", stats.render());
    assert!(
        stats.proof_reads_rejected > 0,
        "liar never caught on the proof path: {}",
        stats.render()
    );
    assert!(
        stats.proof_retries > 0,
        "rejected proof reads must retry another replica first: {}",
        stats.render()
    );
    assert_eq!(
        stats.proof_fallbacks, 0,
        "the honest spare absorbs every rejection: {}",
        stats.render()
    );
    // The deterministic check accepts only honest proofs, so none of the
    // *proof-accepted* reads can be wrong; pledged reads may still have
    // accepted consistent lies (that is exactly the paper's gap).
    assert!(stats.proof_reads_accepted > 0, "{}", stats.render());
}

/// A proof request for a query shape with no Merkle path (here a range
/// scan) is refused, counted, and — since this PR — *surfaced*: the
/// `slave.proof_unsupported` counter reaches `SystemStats` and its JSON
/// report, so rejected proof paths are visible, not silent.
#[test]
fn unsupported_proof_shapes_are_refused_and_surfaced() {
    let cfg = SystemConfig {
        n_masters: 2,
        n_slaves: 2,
        n_clients: 4,
        seed: 23,
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(Workload {
            reads_per_sec: 2.0,
            writes_per_sec: 0.5, // Keeps digest anchors fresh on slaves.
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(10));
    assert_eq!(sys.stats().proof_unsupported, 0, "clients never route ranges to proofs");

    // A buggy or probing client asks a slave to *prove* a range scan:
    // no Merkle path exists for it, so the slave must refuse and count.
    let client = sys.clients[0];
    for &slave in &[sys.slaves[0], sys.slaves[1]] {
        sys.world.inject(
            client,
            slave,
            Msg::ProofRead {
                req_id: 999_999,
                query: Query::Range {
                    table: "products".into(),
                    low: 0,
                    high: 10,
                    limit: None,
                },
            },
        );
    }
    sys.run_for(SimDuration::from_secs(1));

    let stats = sys.stats();
    assert_eq!(
        stats.proof_unsupported, 2,
        "both refusals must surface in SystemStats: {}",
        stats.render()
    );
    assert!(
        stats.render().contains("unsupported=2"),
        "render must show the counter: {}",
        stats.render()
    );
    // And it reaches the report's numeric fields (the --json path).
    let fields = stats.numeric_fields();
    let (_, v) = fields
        .iter()
        .find(|(name, _)| *name == "proof_unsupported")
        .expect("field exported");
    assert_eq!(*v, 2.0);
}

/// Proof generation and verification are O(log n): the observed path
/// depth on a populated store stays logarithmic, so the wire cost per
/// authenticated read is tens of hashes, not a state scan.
#[test]
fn proof_depth_stays_logarithmic_in_sim() {
    let cfg = SystemConfig {
        n_masters: 2,
        n_slaves: 2,
        n_clients: 4,
        seed: 11,
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(Workload {
            reads_per_sec: 6.0,
            writes_per_sec: 0.2,
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(10));
    let stats = sys.stats();
    assert!(stats.proof_reads_accepted > 0, "{}", stats.render());
    // Default dataset: 500 products (+ reviews + files).  A treap path
    // plus the table-entry hop stays well under 64 even at p99.
    assert!(
        stats.proof_depth.max < 64,
        "proof depth {} looks super-logarithmic",
        stats.proof_depth.max
    );
    assert!(stats.proof_bytes.max > 0);
}
