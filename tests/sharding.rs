//! Cross-shard behaviour of the sharded deployment: per-shard total
//! order with cross-shard concurrency, Byzantine isolation between
//! shards, proof-path hardening, and single-shard determinism.

use secure_replication::core::dataset::DatasetSpec;
use secure_replication::core::scenario::{registry, Param, Runner};
use secure_replication::core::{
    Msg, ShardMap, SlaveBehavior, SystemBuilder, SystemConfig, QueryMix, Workload,
};
use secure_replication::sim::{NodeId, SimDuration};
use secure_replication::store::{execute, Query, QueryResult};

fn write_heavy(n_shards: usize, seed: u64) -> SystemConfig {
    SystemConfig {
        n_shards,
        n_masters: 3,
        n_slaves: 2,
        n_clients: 8,
        max_latency: SimDuration::from_millis(1_000),
        keepalive_period: SimDuration::from_millis(250),
        double_check_prob: 0.0,
        seed,
        ..SystemConfig::default()
    }
}

/// (a) Writes to different shards commit concurrently, yet each shard's
/// commit stream respects its own total order and the per-queue
/// `max_latency` spacing rule.
#[test]
fn shards_commit_concurrently_without_violating_per_shard_order() {
    let cfg = write_heavy(2, 101);
    let max_latency = cfg.max_latency;
    let mut sys = SystemBuilder::new(cfg)
        .workload(Workload {
            reads_per_sec: 1.0,
            writes_per_sec: 30.0, // Saturates both queues.
            writer_fraction: 1.0,
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(30));

    let mut streams = Vec::new();
    for shard in 0..2 {
        let series: Vec<(u64, u64)> = sys
            .world
            .metrics()
            .series(&format!("write.commit_us.shard{shard}"))
            .iter()
            .map(|(t, v)| (t.as_micros(), *v as u64))
            .collect();
        assert!(
            series.len() >= 5,
            "shard {shard} committed too little: {} commits",
            series.len()
        );
        // Per-shard total order: versions advance by exactly one.
        for pair in series.windows(2) {
            assert_eq!(
                pair[1].1,
                pair[0].1 + 1,
                "shard {shard} version stream must be gapless and ordered"
            );
            // Per-shard spacing rule: consecutive commits at least
            // max_latency apart.
            assert!(
                pair[1].0 - pair[0].0 >= max_latency.as_micros(),
                "shard {shard} violated the spacing rule: {} then {}",
                pair[0].0,
                pair[1].0
            );
        }
        streams.push(series);
    }

    // Cross-shard concurrency: some commit of shard 1 lands well inside
    // a shard-0 spacing window (closer than max_latency/2 to a shard-0
    // commit) — impossible under a single global queue.
    let concurrent = streams[0].iter().any(|&(t0, _)| {
        streams[1]
            .iter()
            .any(|&(t1, _)| t0.abs_diff(t1) < max_latency.as_micros() / 2)
    });
    assert!(
        concurrent,
        "expected commits of different shards inside one spacing window"
    );

    // Both shards beat a single queue's ceiling together.
    let total = streams[0].len() + streams[1].len();
    assert!(
        total as f64 > 1.25 * 30.0 / max_latency.as_secs_f64(),
        "two shards should out-commit one queue's 1/max_latency bound, got {total}"
    );
}

/// (b) A Byzantine slave in shard 0 cannot affect proof reads served by
/// shard 1 — and the proof path survives it via the same-shard replica
/// retry, never falling back to pledge+audit.
#[test]
fn byzantine_shard_cannot_affect_other_shards_proof_reads() {
    let cfg = SystemConfig {
        n_shards: 2,
        n_masters: 3,
        n_slaves: 2,
        n_clients: 8,
        double_check_prob: 0.0,
        seed: 202,
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        // Global slave indexes are shard-major: 0 and 1 serve shard 0.
        .slave_behavior(0, SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false })
        .workload(Workload {
            reads_per_sec: 6.0,
            writes_per_sec: 0.0,
            // Static-only mix: every read takes the proof path.
            mix: QueryMix {
                get: 80,
                read_file: 20,
                range: 0,
                filter: 0,
                aggregate: 0,
                join: 0,
                grep: 0,
                stream: 0,
                scan: 0,
                scan_len: 0,
            },
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    // The liar was exercised and caught deterministically at clients.
    assert!(stats.lies_told > 0, "liar never triggered");
    assert!(stats.proof_reads_rejected > 0, "no proof rejections seen");
    assert_eq!(stats.wrong_accepted, 0, "a lie was accepted: {}", stats.render());

    // Proof-path hardening: every rejection retried shard 0's *other*
    // (honest) replica on the proof path; with one liar and one honest
    // replica per shard, no read needed the pledged fallback.
    assert!(stats.proof_retries > 0, "expected same-shard proof retries");
    assert_eq!(
        stats.proof_fallbacks, 0,
        "healthy replica present: fallback must not fire"
    );

    // Shard 1's replicas served reads and told no lies: the Byzantine
    // replica's blast radius ends at its shard boundary.
    let mut shard1_served = 0u64;
    for i in 2..4 {
        shard1_served += sys.with_slave(i, |s| s.reads_served());
        let lies = sys.with_slave(i, |s| s.lies_told().clone());
        assert!(lies.is_empty(), "shard 1 slave {i} lied");
    }
    assert!(shard1_served > 0, "shard 1 served nothing");

    // And every lie in the run came from the shard-0 liar.
    let liar_lies = sys.with_slave(0, |s| s.lies_told().clone());
    assert!(!liar_lies.is_empty());
}

/// When the whole shard lies, the one proof-path retry is spent and the
/// read falls back to the pledged pipeline (the pre-hardening path).
#[test]
fn proof_retry_exhausted_falls_back_to_pledged() {
    let cfg = SystemConfig {
        n_shards: 2,
        n_masters: 3,
        n_slaves: 2,
        n_clients: 6,
        double_check_prob: 0.05,
        seed: 303,
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .slave_behavior(0, SlaveBehavior::ConsistentLiar { prob: 1.0, collude: true })
        .slave_behavior(1, SlaveBehavior::ConsistentLiar { prob: 1.0, collude: true })
        .workload(Workload {
            reads_per_sec: 6.0,
            writes_per_sec: 0.0,
            mix: QueryMix {
                get: 100,
                read_file: 0,
                range: 0,
                filter: 0,
                aggregate: 0,
                join: 0,
                grep: 0,
                stream: 0,
                scan: 0,
                scan_len: 0,
            },
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(20));
    let stats = sys.stats();
    assert!(stats.proof_retries > 0, "retry must be attempted first");
    assert!(
        stats.proof_fallbacks > 0,
        "with every shard-0 replica lying, fallback must fire: {}",
        stats.render()
    );
}

/// (c) `n_shards = 1` reproduces the unsharded topology and its reports
/// byte-identically: the registry spec (which defaults to one shard)
/// and an explicit `NShards = 1` sweep cell produce the same bytes, run
/// after run.
#[test]
fn single_shard_reproduces_seed_topology_byte_identically() {
    let mut base = registry::lookup("quickstart").expect("registered");
    base.duration = SimDuration::from_secs(5);
    base.seeds = vec![2_003];
    assert_eq!(base.config.n_shards, 1, "registry default must be one shard");

    let plain_a = Runner::new(base.clone()).run().expect("runs").to_json_string();
    let plain_b = Runner::new(base.clone()).run().expect("runs").to_json_string();
    assert_eq!(plain_a, plain_b, "same spec must reproduce identical bytes");

    // Explicitly applying `NShards = 1` must change nothing: the report
    // bytes match the implicit single-shard run exactly.
    let mut explicit = base.clone();
    Param::NShards
        .apply(&mut explicit, 1.0)
        .expect("param applies");
    let explicit_bytes = Runner::new(explicit).run().expect("runs").to_json_string();
    assert_eq!(
        explicit_bytes, plain_a,
        "explicit n_shards=1 must match the default topology byte-identically"
    );

    // Topology check: one shard spawns the classic roster.
    let cfg = base.config.clone();
    let (nm, ns, nc) = (cfg.n_masters, cfg.n_slaves, cfg.n_clients);
    let sys = SystemBuilder::new(cfg).build();
    assert_eq!(sys.world.node_count(), nm + ns + 1 + nc);
    assert_eq!(sys.masters.len(), nm);
    assert_eq!(sys.slaves.len(), ns);
}

/// Regression for the cross-shard blacklist wipe: exhausting shard k's
/// master candidates used to call `blacklist.clear()`, erasing Byzantine
/// evidence accumulated against *every other* shard's masters.  The
/// forgiveness must stay scoped to the shard that ran dry.
#[test]
fn blacklist_survives_other_shards_boot_retry() {
    let cfg = write_heavy(2, 404);
    let mut sys = SystemBuilder::new(cfg)
        // Read-only, non-sensitive traffic: no write/sensitive timeouts
        // can blacklist masters behind the test's back.
        .workload(Workload {
            reads_per_sec: 2.0,
            writes_per_sec: 0.0,
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(10));
    assert!(sys.with_client(0, |c| c.is_ready()), "client 0 must be ready");

    let shard0 = sys.with_client(0, |c| c.shard_masters(0));
    let shard1 = sys.with_client(0, |c| c.shard_masters(1));
    assert_eq!(shard0.len(), 3);
    assert_eq!(shard1.len(), 3);

    // Plant Byzantine evidence: one shard-0 master the client is *not*
    // set up with (liveness never needs to forgive it), plus every
    // shard-1 master (shard 1's candidate list runs completely dry).
    let chosen0 = sys.with_client(0, |c| c.chosen_master(0)).expect("ready");
    let marked = *shard0.iter().find(|n| **n != chosen0).expect("three masters");
    sys.with_client(0, |c| {
        c.blacklist_insert(marked);
        for n in &shard1 {
            c.blacklist_insert(*n);
        }
    });

    // A retiring-master notice forces the full re-setup path; shard 1's
    // directory response then finds every candidate blacklisted and must
    // forgive only shard 1's masters before retrying.
    let from = sys.masters[0];
    let client = sys.clients[0];
    sys.world.inject(
        from,
        client,
        Msg::Reassign {
            excluded: NodeId(u32::MAX),
            replacement: None,
        },
    );
    sys.run_for(SimDuration::from_secs(20));

    let bl = sys.with_client(0, |c| c.blacklisted());
    assert!(
        bl.contains(&marked),
        "shard-0 evidence wiped by shard-1's boot retry: {bl:?}"
    );
    // Forgiving shard 1's own masters restored liveness.
    assert!(
        sys.with_client(0, |c| c.is_ready()),
        "client must finish re-setup once shard 1's masters are forgiven"
    );
}

/// Boot-storm audit of the same retry site: repeated full re-setups
/// across every client of a multi-shard deployment must re-request the
/// directory for *all* shards and leave no stale `awaiting_setup`/phase
/// state behind — every client returns Ready with a full pipeline per
/// shard, and writes keep committing on every shard afterwards.
#[test]
fn multi_shard_boot_storm_recovers_cleanly() {
    let cfg = write_heavy(3, 505);
    let n_clients = cfg.n_clients;
    let mut sys = SystemBuilder::new(cfg)
        .workload(Workload {
            reads_per_sec: 1.0,
            writes_per_sec: 20.0,
            writer_fraction: 1.0,
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(10));

    let lookups_before: u64 = (0..3)
        .map(|k| {
            sys.world
                .metrics()
                .counter(&format!("directory.lookups.shard{k}"))
        })
        .sum();

    // Three waves of retiring-master notices to every client, spaced so
    // re-setups overlap with live traffic and with each other.
    for wave in 0..3 {
        for i in 0..n_clients {
            let from = sys.masters[wave % sys.masters.len()];
            let client = sys.clients[i];
            sys.world.inject(
                from,
                client,
                Msg::Reassign {
                    excluded: NodeId(u32::MAX),
                    replacement: None,
                },
            );
        }
        sys.run_for(SimDuration::from_secs(4));
    }
    let committed_after_storm = sys.stats().writes_committed_per_shard.clone();
    sys.run_for(SimDuration::from_secs(15));

    // Every client fully recovered: Ready, with a chosen master and
    // slaves for every shard (no half-booted shard views).
    for i in 0..n_clients {
        assert!(sys.with_client(i, |c| c.is_ready()), "client {i} stuck");
        for shard in 0..3 {
            assert!(
                sys.with_client(i, |c| c.chosen_master(shard)).is_some(),
                "client {i} shard {shard} has no master after the storm"
            );
            assert!(
                !sys.with_client(i, |c| c.assigned_slaves_of_shard(shard)).is_empty(),
                "client {i} shard {shard} has no slaves after the storm"
            );
        }
    }
    // Each re-boot re-requested the directory for all shards.
    let lookups_after: u64 = (0..3)
        .map(|k| {
            sys.world
                .metrics()
                .counter(&format!("directory.lookups.shard{k}"))
        })
        .sum();
    assert!(
        lookups_after >= lookups_before + (3 * n_clients as u64 * 3),
        "every storm wave must re-request the directory for every shard: \
         before={lookups_before} after={lookups_after}"
    );
    // And the write pipeline kept going on every shard.
    let committed_final = sys.stats().writes_committed_per_shard.clone();
    for shard in 0..3 {
        assert!(
            committed_final[shard] > committed_after_storm[shard],
            "shard {shard} stopped committing after the storm: \
             {committed_after_storm:?} -> {committed_final:?}"
        );
    }
}

/// The registry's `batched_commit` sweep delivers the tentpole claim:
/// at a fixed `max_latency` (the spacing rule unchanged), commit
/// throughput scales with the sequencer's batch bound — ≥ 4× at
/// batch = 8 vs batch = 1 on a single shard.
#[test]
fn batched_commit_sweep_scales_with_batch_size() {
    let mut spec = registry::lookup("batched_commit").expect("registered");
    // Shrink for test time; the shape of the claim is unchanged.
    spec.duration = SimDuration::from_secs(12);
    spec.seeds = vec![6_006];
    let report = Runner::new(spec).run().expect("scenario runs");
    assert_eq!(report.cells.len(), 4);

    let committed: Vec<f64> = report
        .cells
        .iter()
        .map(|c| c.mean("writes_committed"))
        .collect();
    for (i, pair) in committed.windows(2).enumerate() {
        assert!(
            pair[1] > pair[0],
            "writes_committed must grow with batch size: {committed:?} (step {i})"
        );
    }
    assert!(
        committed[3] >= 4.0 * committed[0],
        "batch=8 must commit at least 4x batch=1: {committed:?}"
    );
    // The batch-size histogram shows real batches at batch=8 and the
    // degenerate single-write rounds at batch=1.
    let batched = &report.cells[3].runs[0].stats;
    assert!(
        batched.writes_per_round.mean > 1.5,
        "batch=8 rounds must actually pack writes: mean={}",
        batched.writes_per_round.mean
    );
    assert!(batched.writes_per_round.max <= 8);
    let unbatched = &report.cells[0].runs[0].stats;
    assert_eq!(unbatched.writes_per_round.max, 1);
}

/// The registry's `sharded_commit` sweep delivers the tentpole claim:
/// committed writes grow monotonically with shard count on the
/// write-heavy workload.
#[test]
fn sharded_commit_sweep_scales_monotonically() {
    let mut spec = registry::lookup("sharded_commit").expect("registered");
    // Shrink for test time; the shape of the claim is unchanged.
    spec.duration = SimDuration::from_secs(12);
    spec.seeds = vec![8_008];
    let report = Runner::new(spec).run().expect("scenario runs");
    assert_eq!(report.cells.len(), 4);

    let committed: Vec<f64> = report
        .cells
        .iter()
        .map(|c| c.mean("writes_committed"))
        .collect();
    for (i, pair) in committed.windows(2).enumerate() {
        assert!(
            pair[1] > pair[0],
            "writes_committed must grow with shards: {committed:?} (step {i})"
        );
    }
    // And the per-shard counters actually cover every shard.
    let last = &report.cells[3].runs[0].stats;
    assert_eq!(last.writes_committed_per_shard.len(), 8);
    assert!(
        last.writes_committed_per_shard.iter().all(|&w| w > 0),
        "every shard must commit: {:?}",
        last.writes_committed_per_shard
    );
}

/// (h) The scatter-gather invariant at the store level: splitting a
/// scan at shard boundaries, proving each piece against its *own*
/// shard's digest, and stitching yields exactly the rows of the
/// unsharded scan — and a corrupted slice from any one shard dies in
/// that shard's proof (the range proof's completeness check refuses
/// dropped or forged rows, not just wrong values).
#[test]
fn cross_shard_scan_stitches_byte_identically_to_one_shard() {
    let spec = DatasetSpec::default(); // 500 products.
    let whole = spec.build();
    let map = ShardMap::new(4, &spec);
    let shards = spec.build_shards(&map);
    let scan = |s: u64, e: u64| Query::ScanRange { table: "products".into(), start: s, end: e };

    // [100, 420) crosses every boundary of the 125-row shards.
    let (start, end) = (100u64, 420u64);
    let (expect, _) = execute(&whole, &scan(start, end)).unwrap();
    whole
        .prove_scan("products", start, end)
        .unwrap()
        .verify_result(&whole.state_digest(), whole.version(), &scan(start, end), &expect)
        .unwrap();

    let parts = map.split_scan(start, end);
    assert_eq!(parts.len(), 4, "range must span every shard: {parts:?}");
    let mut stitched = Vec::new();
    for &(s, lo, hi) in &parts {
        let db = &shards[s];
        let (result, _) = execute(db, &scan(lo, hi)).unwrap();
        db.prove_scan("products", lo, hi)
            .unwrap()
            .verify_result(&db.state_digest(), db.version(), &scan(lo, hi), &result)
            .unwrap_or_else(|e| panic!("shard {s} piece [{lo},{hi}) rejected: {e:?}"));
        let QueryResult::Rows(rows) = result else { panic!("scan returns rows") };
        stitched.extend(rows);
    }
    assert_eq!(QueryResult::Rows(stitched), expect, "stitched row set differs");

    // A Byzantine slave corrupting one shard's slice (the liar's edit:
    // drop the last row, append a forged one) is caught by that shard's
    // own proof — no cross-shard information needed.
    let (s, lo, hi) = parts[2];
    let db = &shards[s];
    let (result, _) = execute(db, &scan(lo, hi)).unwrap();
    let proof = db.prove_scan("products", lo, hi).unwrap();
    let bad = secure_replication::core::slave::corrupt(&result, 0);
    assert!(
        proof
            .verify_result(&db.state_digest(), db.version(), &scan(lo, hi), &bad)
            .is_err(),
        "corrupted slice must not verify"
    );
}

/// (i) End-to-end scatter-gather under attack: a consistent liar owning
/// one replica of shard 1 corrupts its slice of every scan it serves.
/// The per-shard proof kills each forgery at the client, the sub-scan
/// retries the shard's honest replica (never the pledged fallback), and
/// no stitched scan ever accepts a wrong row.
#[test]
fn stitched_scans_reject_a_byzantine_shard_slice() {
    let cfg = SystemConfig {
        n_shards: 4,
        n_masters: 3,
        n_slaves: 2,
        n_clients: 8,
        double_check_prob: 0.0,
        seed: 404,
        ..SystemConfig::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        // Global slave indexes are shard-major: 2 and 3 serve shard 1.
        .slave_behavior(2, SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false })
        .workload(Workload {
            reads_per_sec: 6.0,
            writes_per_sec: 0.0,
            mix: QueryMix {
                get: 0,
                range: 0,
                filter: 0,
                aggregate: 0,
                join: 0,
                grep: 0,
                read_file: 0,
                stream: 0,
                scan: 100,
                scan_len: 200, // Spans 2-3 of the 4 125-row shards.
            },
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();
    let m = sys.world.metrics();

    assert!(
        stats.range_scans_scattered > 0,
        "no scan crossed a shard boundary: {}",
        stats.render()
    );
    assert!(
        m.counter("read.range_stitched") > 0,
        "no stitched scan completed: {}",
        stats.render()
    );
    assert!(stats.lies_told > 0, "liar never triggered");
    assert!(
        stats.proof_reads_rejected > 0,
        "forged slices were never caught: {}",
        stats.render()
    );
    assert_eq!(
        stats.wrong_accepted, 0,
        "a corrupted slice was stitched into an accepted scan: {}",
        stats.render()
    );
    assert_eq!(
        stats.range_stitch_rejects, 0,
        "verified honest pieces must tile the range: {}",
        stats.render()
    );
    assert!(stats.range_rows_verified > 0, "no rows verified under range proofs");
}
